module Proto = Bft_nfs.Proto
module Fs = Bft_nfs.Fs
module Payload = Bft_core.Payload
module Rng = Bft_util.Rng

type profile = {
  copies : int;
  dirs_per_copy : int;
  files_per_copy : int;
  write_buffer : int;
  client_mem : int;
  compute_scale : float;
}

let andrew ~n =
  {
    copies = n;
    dirs_per_copy = 5;
    files_per_copy = 50;
    write_buffer = 3072;
    client_mem = 512 * 1024 * 1024;
    compute_scale = 1.0;
  }

let phase_names = [ "mkdir"; "copy"; "scan"; "read"; "make" ]

(* Source-file sizes cycle over a fixed pattern averaging ~37 KB, so each
   copy carries ~1.8 MB: Andrew100 ~ 185 MB, Andrew500 ~ 925 MB, matching
   the paper's "approximately 200 MB and 1 GB". *)
let size_pattern =
  [| 2048; 4096; 6144; 8192; 12288; 16384; 24576; 32768; 49152; 65536; 98304; 131072 |]

let file_size index = size_pattern.(index mod Array.length size_pattern)

(* The generator mirrors the server file system locally so emitted calls
   carry concrete file handles. All three backends execute the identical
   call stream, so the mirror stays faithful. *)
type gen = {
  fs : Fs.t;
  mutable steps : Nfs_rig.step list;  (** reversed *)
  compute_scale : float;
}

let emit g step = g.steps <- step :: g.steps

let compute g seconds =
  if seconds > 0.0 then emit g (Nfs_rig.Compute (seconds *. g.compute_scale))

let call g c = emit g (Nfs_rig.Call c)

let must label = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "andrew generator: %s: %s" label (Fs.error_name e))

let do_mkdir g ~dir ~name =
  call g (Proto.Mkdir { dir; name; mode = 0o755 });
  let fh, _, _ = must "mkdir" (Fs.mkdir g.fs ~dir ~name ~mode:0o755) in
  fh

let do_create g ~dir ~name =
  call g (Proto.Create { dir; name; mode = 0o644 });
  let fh, _, _ = must "create" (Fs.create_file g.fs ~dir ~name ~mode:0o644) in
  fh

let do_write g ~fh ~off ~len =
  let data = Payload.zeros len in
  call g (Proto.Write { fh; off; data });
  ignore (must "write" (Fs.write g.fs fh ~off ~data))

let write_file g ~fh ~size ~buffer ~per_write_compute =
  let off = ref 0 in
  while !off < size do
    let len = Stdlib.min buffer (size - !off) in
    compute g per_write_compute;
    do_write g ~fh ~off:!off ~len;
    off := !off + len
  done

type copy_layout = {
  copy_dir : Fs.fh;
  subdirs : Fs.fh array;
  files : (Fs.fh * string * Fs.fh * int) array;  (** dir, name, fh, size *)
}

let generate ?(seed = 7) (profile : profile) =
  let g =
    { fs = Fs.create (); steps = []; compute_scale = profile.compute_scale }
  in
  let rng = Rng.of_int seed in
  ignore rng;
  let layouts = ref [] in
  (* Phase 1: create the directory trees. *)
  emit g (Nfs_rig.Phase "start");
  let layouts_arr =
    Array.init profile.copies (fun c ->
        compute g 0.4e-3;
        let copy_dir = do_mkdir g ~dir:Fs.root ~name:(Printf.sprintf "copy%d" c) in
        let subdirs =
          Array.init
            (Stdlib.max 1 (profile.dirs_per_copy - 1))
            (fun d ->
              compute g 0.4e-3;
              do_mkdir g ~dir:copy_dir ~name:(Printf.sprintf "dir%d" d))
        in
        { copy_dir; subdirs; files = [||] })
  in
  emit g (Nfs_rig.Phase "mkdir");
  (* Phase 2: copy the source files. *)
  Array.iteri
    (fun c layout ->
      let files =
        Array.init profile.files_per_copy (fun i ->
            let dir = layout.subdirs.(i mod Array.length layout.subdirs) in
            let name = Printf.sprintf "f%d.c" i in
            let size = file_size ((c * profile.files_per_copy) + i) in
            compute g 1.2e-3;
            let fh = do_create g ~dir ~name in
            write_file g ~fh ~size ~buffer:profile.write_buffer
              ~per_write_compute:0.08e-3;
            (dir, name, fh, size))
      in
      layouts_arr.(c) <- { layout with files })
    layouts_arr;
  layouts := Array.to_list layouts_arr;
  let data_set =
    Array.fold_left
      (fun acc l -> Array.fold_left (fun acc (_, _, _, s) -> acc + s) acc l.files)
      0 layouts_arr
  in
  emit g (Nfs_rig.Phase "copy");
  (* Phase 3: stat every file (du / ls -lR). *)
  Array.iter
    (fun layout ->
      call g (Proto.Readdir layout.copy_dir);
      compute g 0.8e-3;
      Array.iter
        (fun sd ->
          call g (Proto.Readdir sd);
          compute g 0.8e-3)
        layout.subdirs;
      Array.iter
        (fun (dir, name, fh, _) ->
          compute g 0.12e-3;
          call g (Proto.Lookup { dir; name });
          call g (Proto.Getattr fh))
        layout.files)
    layouts_arr;
  emit g (Nfs_rig.Phase "scan");
  (* Phase 4: read every byte (grep). When the data set fits in the client
     cache it was just written by phase 2, so almost all reads are absorbed
     locally; only attribute revalidation and a residue of cold misses reach
     the server. *)
  let cached = data_set <= profile.client_mem in
  Array.iter
    (fun layout ->
      Array.iteri
        (fun i (dir, name, fh, size) ->
          compute g 0.35e-3;
          call g (Proto.Lookup { dir; name });
          let miss = (not cached) || i mod 10 = 0 in
          let chunks = (size + profile.write_buffer - 1) / profile.write_buffer in
          if miss then
            for k = 0 to chunks - 1 do
              compute g 0.09e-3;
              call g
                (Proto.Read
                   { fh; off = k * profile.write_buffer; len = profile.write_buffer })
            done
          else
            (* served from the client cache: scan cost only *)
            compute g (0.05e-3 *. float_of_int chunks))
        layout.files)
    layouts_arr;
  emit g (Nfs_rig.Phase "read");
  (* Phase 5: compile (client-compute heavy, writes object files). *)
  Array.iteri
    (fun c layout ->
      compute g 1.1;
      let objs = 10 in
      for i = 0 to objs - 1 do
        compute g 2.0e-3;
        let dir = layout.subdirs.(i mod Array.length layout.subdirs) in
        let fh = do_create g ~dir ~name:(Printf.sprintf "o%d_%d.o" c i) in
        write_file g ~fh ~size:11264 ~buffer:profile.write_buffer
          ~per_write_compute:0.08e-3
      done)
    layouts_arr;
  emit g (Nfs_rig.Phase "make");
  List.rev g.steps
