(** Micro-benchmark drivers for the paper's "simple service": operations
    with an [a]-byte argument and a [b]-byte zero-filled result, read-write
    or read-only, against BFT (any configuration) or NO-REP. *)

type latency_result = {
  mean : float;  (** seconds *)
  stddev : float;
  ops : int;
}

val bft_latency :
  ?config:Bft_core.Config.t ->
  ?ops:int ->
  ?seed:int ->
  arg:int ->
  res:int ->
  read_only:bool ->
  unit ->
  latency_result
(** Single client (700 MHz, as in Figures 2–3), ops invoked back to back. *)

val norep_latency :
  ?ops:int -> ?seed:int -> arg:int -> res:int -> unit -> latency_result

type throughput_result = {
  ops_per_sec : float;  (** [nan] when the run stalled (NO-REP losses) *)
  completed : int;
  stalled_clients : int;
  retransmissions : int;
}

val bft_throughput :
  ?config:Bft_core.Config.t ->
  ?seed:int ->
  ?warmup:float ->
  ?window:float ->
  arg:int ->
  res:int ->
  read_only:bool ->
  clients:int ->
  unit ->
  throughput_result
(** Clients spread over 5 client machines, closed loop, measured over
    [window] seconds after [warmup]. *)

val norep_throughput :
  ?seed:int ->
  ?warmup:float ->
  ?window:float ->
  ?retry:bool ->
  arg:int ->
  res:int ->
  clients:int ->
  unit ->
  throughput_result
(** [retry = false] (paper behaviour): lost requests stall their client;
    when more than a quarter of the clients stall, [ops_per_sec] is [nan]
    (the paper plots no such points). *)
