(** Micro-benchmark drivers for the paper's "simple service": operations
    with an [a]-byte argument and a [b]-byte zero-filled result, read-write
    or read-only, against BFT (any configuration) or NO-REP. Every driver
    takes an optional [cal] cost profile ({!Bft_sim.Calibration.profiles});
    the default is the paper's [testbed-2001]. *)

type latency_result = {
  mean : float;  (** seconds *)
  stddev : float;
  ops : int;
}

val latency_warmup : int
(** Operations discarded before measurement starts in {!bft_latency} and
    {!norep_latency}. *)

val bft_latency :
  ?config:Bft_core.Config.t ->
  ?ops:int ->
  ?seed:int ->
  ?cal:Bft_sim.Calibration.t ->
  ?trace:Bft_trace.Trace.t ->
  ?monitor:Bft_trace.Monitor.t ->
  arg:int ->
  res:int ->
  read_only:bool ->
  unit ->
  latency_result
(** Single client (700 MHz, as in Figures 2–3), ops invoked back to back.
    Pass a live [trace] sink to record the protocol trace of the run;
    fold it with {!Bft_trace.Timeline.of_trace} [~skip:latency_warmup]
    to decompose exactly the measured operations. Pass a [monitor] to
    attach always-on health telemetry ({!Bft_core.Cluster.attach_monitor});
    observation is pure, so the measured numbers are bit-identical with
    and without it. *)

(** One ordering owner's share of the run: batches it proposed and, under
    rotating ordering, its null fills and reclaims. *)
type owner_row = {
  ow_id : int;
  ow_batches : int;  (** PRE-PREPAREs this replica sent ([batch.sent]) *)
  ow_null_fill : int;  (** [rotate.null_fill] counter *)
  ow_reclaim : int;  (** [rotate.reclaim] counter *)
}

type profile_result = {
  pf_latency : latency_result;
  pf_profile : Bft_trace.Profile.t;
      (** per-machine, per-category CPU cost breakdown of the whole run *)
  pf_crypto : Bft_crypto.Tally.snapshot;
      (** crypto operation counts over the whole run (setup included) *)
  pf_series : Bft_trace.Series.t option;
      (** metric snapshots, when [series_every] was given *)
  pf_owners : owner_row list;
      (** per-replica ordering-ownership breakdown, replica order *)
}

val bft_profile :
  ?config:Bft_core.Config.t ->
  ?ops:int ->
  ?seed:int ->
  ?cal:Bft_sim.Calibration.t ->
  ?trace:Bft_trace.Trace.t ->
  ?series_every:float ->
  ?series_cap:int ->
  ?monitor:Bft_trace.Monitor.t ->
  arg:int ->
  res:int ->
  read_only:bool ->
  unit ->
  profile_result
(** {!bft_latency} plus profiling: resets the global crypto tally, runs the
    same rig, and captures the per-category CPU profile and crypto op
    counts. With [series_every], also samples {!Bft_core.Cluster.series_values}
    on that virtual-time cadence into a ring of [series_cap] samples
    (default 4096); note the sampler adds engine events, so traced virtual
    times can differ from an unsampled run. The profile is balanced by
    construction (see {!Bft_trace.Profile.balanced}). *)

val norep_latency :
  ?ops:int -> ?seed:int -> arg:int -> res:int -> unit -> latency_result

type throughput_result = {
  ops_per_sec : float;  (** [nan] when the run stalled (NO-REP losses) *)
  completed : int;
  stalled_clients : int;
  retransmissions : int;
  drops_by_node : (string * int * int) list;
      (** [(host, dropped, overflowed)] for every host that lost at least
          one datagram — attributes a saturation cliff (e.g. NO-REP past
          ~15 clients, paper Figure 4) to the overloaded server. *)
}

val bft_throughput :
  ?config:Bft_core.Config.t ->
  ?seed:int ->
  ?warmup:float ->
  ?window:float ->
  ?cal:Bft_sim.Calibration.t ->
  ?trace:Bft_trace.Trace.t ->
  ?monitor:Bft_trace.Monitor.t ->
  arg:int ->
  res:int ->
  read_only:bool ->
  clients:int ->
  unit ->
  throughput_result
(** Clients spread over 5 client machines, closed loop, measured over
    [window] seconds after [warmup]. [trace] and [monitor] as in
    {!bft_latency}. *)

type sharded_result = {
  sh_ops_per_sec : float;  (** virtual time, summed over all groups *)
  sh_completed : int;
  sh_per_group : int array;  (** completions per group over the window *)
  sh_stalled_clients : int;  (** proxies that made no progress *)
  sh_retransmissions : int;
  sh_drops_by_node : (string * int * int) list;
  sh_monitors : Bft_trace.Monitor.t array;
      (** per-group health monitors when [health] was requested (group
          order), else empty — roll them up with
          {!Bft_shard.Rig.health_rollup} *)
}

val sharded_throughput :
  ?config:Bft_core.Config.t ->
  ?seed:int ->
  ?warmup:float ->
  ?window:float ->
  ?cal:Bft_sim.Calibration.t ->
  ?trace:Bft_trace.Trace.t ->
  ?key_space:int ->
  ?health:bool ->
  groups:int ->
  clients_per_group:int ->
  unit ->
  sharded_result
(** Uniform-single-key KV writes against a sharded deployment
    ({!Bft_shard.Rig} with [groups] replica groups on one simulation):
    [groups * clients_per_group] closed-loop proxies each pick a uniform
    key from [key_space] (default 4096) per op, so load spreads over the
    groups in proportion to the slots they own. Same [warmup]/[window]
    measurement as {!bft_throughput}. Every group runs [config]. With
    [health] (default false), a monitor is attached per group before any
    client starts; results are bit-identical either way. *)

type mixed_result = {
  mx_ops_per_sec : float;
      (** virtual time; a cross-shard transaction counts as one op *)
  mx_completed : int;
  mx_cross_committed : int;
  mx_cross_aborted : int;
}

val mixed_txn_throughput :
  ?config:Bft_core.Config.t ->
  ?seed:int ->
  ?warmup:float ->
  ?window:float ->
  ?cal:Bft_sim.Calibration.t ->
  ?key_space:int ->
  groups:int ->
  clients_per_group:int ->
  cross_fraction:float ->
  unit ->
  mixed_result
(** Mixed single-key / cross-shard workload against a sharded deployment:
    [groups * clients_per_group] closed-loop {!Bft_shard.Txn} handles each
    issue, with probability [cross_fraction], a two-key cross-group atomic
    transaction (2PC through the decision group), and otherwise a plain
    single-key put. Throughput counts completed client operations, so the
    axis is comparable across fractions and the 2PC cost (two replicated
    rounds per participant plus the decision-group serialization) shows up
    directly. Raises [Invalid_argument] unless
    [0 <= cross_fraction <= 1]. *)

val norep_throughput :
  ?seed:int ->
  ?warmup:float ->
  ?window:float ->
  ?retry:bool ->
  arg:int ->
  res:int ->
  clients:int ->
  unit ->
  throughput_result
(** [retry = false] (paper behaviour): lost requests stall their client;
    when more than a quarter of the clients stall, [ops_per_sec] is [nan]
    (the paper plots no such points). *)
