module Table = Bft_util.Table

type anchor = {
  description : string;
  paper : string;
  measured : string;
  ok : bool;
}

type section = {
  id : string;
  title : string;
  table : Table.t;
  anchors : anchor list;
}

let print section =
  Printf.printf "\n### %s — %s\n\n" section.id section.title;
  Table.print section.table;
  if section.anchors <> [] then begin
    Printf.printf "\nPaper anchors:\n";
    List.iter
      (fun a ->
        Printf.printf "  [%s] %s: paper %s, measured %s\n"
          (if a.ok then "ok" else "??")
          a.description a.paper a.measured)
      section.anchors
  end;
  flush stdout

let anchor ~description ~paper ~measured ~ok = { description; paper; measured; ok }

let ratio_anchor ~description ~paper_ratio ~measured ~tolerance =
  let ok =
    (not (Float.is_nan measured))
    && Float.abs (measured -. paper_ratio) <= tolerance *. Float.abs paper_ratio
  in
  {
    description;
    paper = Printf.sprintf "%.2f" paper_ratio;
    measured = (if Float.is_nan measured then "-" else Printf.sprintf "%.2f" measured);
    ok;
  }

let direction_anchor ~description ~paper ~holds ~measured =
  { description; paper; measured; ok = holds }

let breakdown_section ?(id = "trace") ?(title = "Per-phase latency breakdown")
    (tl : Bft_trace.Timeline.t) =
  let module Stats = Bft_util.Stats in
  let us x = x *. 1e6 in
  let total_mean = Stats.mean tl.Bft_trace.Timeline.end_to_end in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s (%d requests, %d incomplete)"
           title tl.Bft_trace.Timeline.requests tl.Bft_trace.Timeline.incomplete)
      ~columns:
        [
          ("phase", Table.Left);
          ("mean (us)", Table.Right);
          ("p50 (us)", Table.Right);
          ("p95 (us)", Table.Right);
          ("p99 (us)", Table.Right);
          ("share", Table.Right);
        ]
  in
  List.iter
    (fun (name, stats) ->
      if name = "end-to-end" then Table.add_separator table;
      let mean = Stats.mean stats in
      let share =
        if name = "end-to-end" || Float.is_nan total_mean || total_mean = 0.0
        then "-"
        else Printf.sprintf "%.1f%%" (100.0 *. mean /. total_mean)
      in
      Table.add_row table
        [
          name;
          Table.cell_f ~decimals:1 (us mean);
          Table.cell_f ~decimals:1 (us (Stats.p50 stats));
          Table.cell_f ~decimals:1 (us (Stats.p95 stats));
          Table.cell_f ~decimals:1 (us (Stats.p99 stats));
          share;
        ])
    (Bft_trace.Timeline.phases tl);
  { id; title; table; anchors = [] }

(* Paper Section 4.2: where do the modeled CPU cycles go? One row per
   machine plus a cluster-wide total, one column per cost category. *)
let profile_section ?(id = "profile")
    ?(title = "CPU cost breakdown (virtual time)") (p : Bft_trace.Profile.t) =
  let module Profile = Bft_trace.Profile in
  let us x = x *. 1e6 in
  let labels = Profile.labels p in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s%s" title
           (if Profile.balanced p then "" else " [UNBALANCED]"))
      ~columns:
        (("machine", Table.Left)
        :: (Array.to_list labels
           |> List.map (fun l -> (l ^ " (us)", Table.Right)))
        @ [ ("busy (us)", Table.Right) ])
  in
  List.iter
    (fun (n : Profile.node) ->
      Table.add_row table
        (n.Profile.pn_name
        :: (Array.to_list n.Profile.pn_seconds
           |> List.map (fun s -> Table.cell_f ~decimals:1 (us s)))
        @ [ Table.cell_f ~decimals:1 (us n.Profile.pn_busy) ]))
    (Profile.nodes p);
  Table.add_separator table;
  Table.add_row table
    ("total"
    :: (Array.to_list (Profile.totals p)
       |> List.map (fun s -> Table.cell_f ~decimals:1 (us s)))
    @ [ Table.cell_f ~decimals:1 (us (Profile.total_busy p)) ]);
  { id; title; table; anchors = [] }

(* Paper Section 4.2 counts operations, not just cycles: MACs generated and
   checked, bytes digested — per completed request when [ops] is given. *)
let crypto_section ?(id = "crypto") ?(title = "Crypto operation counts")
    ?ops (c : Bft_crypto.Tally.snapshot) =
  let table =
    Table.create ~title
      ~columns:
        (("operation", Table.Left)
        :: ("count", Table.Right)
        :: ("bytes", Table.Right)
        ::
        (match ops with
        | Some _ -> [ ("per request", Table.Right) ]
        | None -> []))
  in
  let row name count bytes =
    Table.add_row table
      (name :: string_of_int count :: string_of_int bytes
      ::
      (match ops with
      | Some n when n > 0 ->
        [ Table.cell_f ~decimals:1 (float_of_int count /. float_of_int n) ]
      | Some _ -> [ "-" ]
      | None -> []))
  in
  row "mac generate" c.Bft_crypto.Tally.mac_gen_ops c.Bft_crypto.Tally.mac_gen_bytes;
  row "mac verify" c.Bft_crypto.Tally.mac_verify_ops
    c.Bft_crypto.Tally.mac_verify_bytes;
  row "digest" c.Bft_crypto.Tally.digest_ops c.Bft_crypto.Tally.digest_bytes;
  { id; title; table; anchors = [] }
