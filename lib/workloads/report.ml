module Table = Bft_util.Table

type anchor = {
  description : string;
  paper : string;
  measured : string;
  ok : bool;
}

type section = {
  id : string;
  title : string;
  table : Table.t;
  anchors : anchor list;
}

let print section =
  Printf.printf "\n### %s — %s\n\n" section.id section.title;
  Table.print section.table;
  if section.anchors <> [] then begin
    Printf.printf "\nPaper anchors:\n";
    List.iter
      (fun a ->
        Printf.printf "  [%s] %s: paper %s, measured %s\n"
          (if a.ok then "ok" else "??")
          a.description a.paper a.measured)
      section.anchors
  end;
  flush stdout

let anchor ~description ~paper ~measured ~ok = { description; paper; measured; ok }

let ratio_anchor ~description ~paper_ratio ~measured ~tolerance =
  let ok =
    (not (Float.is_nan measured))
    && Float.abs (measured -. paper_ratio) <= tolerance *. Float.abs paper_ratio
  in
  {
    description;
    paper = Printf.sprintf "%.2f" paper_ratio;
    measured = (if Float.is_nan measured then "-" else Printf.sprintf "%.2f" measured);
    ok;
  }

let direction_anchor ~description ~paper ~holds ~measured =
  { description; paper; measured; ok = holds }
