module Table = Bft_util.Table

type anchor = {
  description : string;
  paper : string;
  measured : string;
  ok : bool;
}

type section = {
  id : string;
  title : string;
  table : Table.t;
  anchors : anchor list;
}

let print section =
  Printf.printf "\n### %s — %s\n\n" section.id section.title;
  Table.print section.table;
  if section.anchors <> [] then begin
    Printf.printf "\nPaper anchors:\n";
    List.iter
      (fun a ->
        Printf.printf "  [%s] %s: paper %s, measured %s\n"
          (if a.ok then "ok" else "??")
          a.description a.paper a.measured)
      section.anchors
  end;
  flush stdout

let anchor ~description ~paper ~measured ~ok = { description; paper; measured; ok }

let ratio_anchor ~description ~paper_ratio ~measured ~tolerance =
  let ok =
    (not (Float.is_nan measured))
    && Float.abs (measured -. paper_ratio) <= tolerance *. Float.abs paper_ratio
  in
  {
    description;
    paper = Printf.sprintf "%.2f" paper_ratio;
    measured = (if Float.is_nan measured then "-" else Printf.sprintf "%.2f" measured);
    ok;
  }

let direction_anchor ~description ~paper ~holds ~measured =
  { description; paper; measured; ok = holds }

let breakdown_section ?(id = "trace") ?(title = "Per-phase latency breakdown")
    (tl : Bft_trace.Timeline.t) =
  let module Stats = Bft_util.Stats in
  let us x = x *. 1e6 in
  let total_mean = Stats.mean tl.Bft_trace.Timeline.end_to_end in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%s (%d requests, %d incomplete)"
           title tl.Bft_trace.Timeline.requests tl.Bft_trace.Timeline.incomplete)
      ~columns:
        [
          ("phase", Table.Left);
          ("mean (us)", Table.Right);
          ("p50 (us)", Table.Right);
          ("p99 (us)", Table.Right);
          ("share", Table.Right);
        ]
  in
  List.iter
    (fun (name, stats) ->
      if name = "end-to-end" then Table.add_separator table;
      let mean = Stats.mean stats in
      let share =
        if name = "end-to-end" || Float.is_nan total_mean || total_mean = 0.0
        then "-"
        else Printf.sprintf "%.1f%%" (100.0 *. mean /. total_mean)
      in
      Table.add_row table
        [
          name;
          Table.cell_f ~decimals:1 (us mean);
          Table.cell_f ~decimals:1 (us (Stats.percentile stats 50.0));
          Table.cell_f ~decimals:1 (us (Stats.percentile stats 99.0));
          share;
        ])
    (Bft_trace.Timeline.phases tl);
  { id; title; table; anchors = [] }
