(** Experiment output: one section per paper figure, carrying both the
    rendered table and the paper-anchor comparisons recorded into
    EXPERIMENTS.md. *)

type anchor = {
  description : string;
  paper : string;  (** what the paper reports *)
  measured : string;  (** what this reproduction measures *)
  ok : bool;  (** does the shape/direction hold? *)
}

type section = {
  id : string;  (** e.g. "fig4" *)
  title : string;
  table : Bft_util.Table.t;
  anchors : anchor list;
}

val print : section -> unit

val anchor :
  description:string -> paper:string -> measured:string -> ok:bool -> anchor

val ratio_anchor :
  description:string -> paper_ratio:float -> measured:float -> tolerance:float ->
  anchor
(** Anchor comparing a measured ratio against the paper's, accepting a
    relative [tolerance] (e.g. 0.5 = within 50%). *)

val direction_anchor :
  description:string -> paper:string -> holds:bool -> measured:string -> anchor

val breakdown_section :
  ?id:string -> ?title:string -> Bft_trace.Timeline.t -> section
(** Render a folded trace timeline as a per-phase latency table
    (mean/p50/p95/p99 in microseconds plus each phase's share of the
    end-to-end mean), in the style of the paper's Section 4.2 latency
    discussion. *)

val profile_section :
  ?id:string -> ?title:string -> Bft_trace.Profile.t -> section
(** Render a CPU cost profile as a machine x category table (microseconds)
    with a cluster-wide total row — the paper's Section 4.2 cost breakdown.
    The title is tagged [UNBALANCED] if any machine's categories do not sum
    exactly to its busy time. *)

val crypto_section :
  ?id:string ->
  ?title:string ->
  ?ops:int ->
  Bft_crypto.Tally.snapshot ->
  section
(** Render crypto operation counts (MACs generated/verified, bytes
    digested); with [ops], also per completed request. *)
