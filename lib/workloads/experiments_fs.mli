(** Reproduction of the Section 5 file-system benchmarks. *)

val fig8 : ?quick:bool -> unit -> Report.section list
(** Modified Andrew (Andrew100 and Andrew500): elapsed time for BFS,
    NO-REP and NFS-STD. [quick] runs Andrew5/Andrew25-style reductions. *)

val fig9 : ?quick:bool -> unit -> Report.section list
(** PostMark: transactions per second for BFS, NO-REP and NFS-STD. *)

val all : ?quick:bool -> unit -> Report.section list

val run_andrew :
  ?client_mem:int -> ?server_mem:int -> n:int -> Nfs_rig.backend -> float * int
(** Elapsed seconds and NFS calls for one backend (used by bin/bft_lab). *)

val run_postmark :
  ?files:int -> ?transactions:int -> Nfs_rig.backend -> float * int
(** Elapsed seconds and transaction count. *)

(** One file-system benchmark run with telemetry attached: per-phase
    elapsed breakdown, per-machine CPU-profile attribution, and the health
    monitor (call-latency SLO sketches for every backend; replica gauges
    and anomaly detectors for BFS). *)
type observed = {
  ob_backend : Nfs_rig.backend;
  ob_elapsed : float;  (** total virtual seconds *)
  ob_calls : int;  (** NFS calls issued *)
  ob_phases : (string * float) list;  (** phase name, elapsed seconds *)
  ob_profile : Bft_trace.Profile.t;
  ob_monitor : Bft_trace.Monitor.t;
}

val observe_andrew :
  ?client_mem:int -> ?server_mem:int -> n:int -> Nfs_rig.backend -> observed
(** {!run_andrew} with telemetry. The numbers match the unobserved run —
    monitoring is pure observation. *)

val observe_postmark :
  ?files:int -> ?transactions:int -> Nfs_rig.backend -> observed * int
(** {!run_postmark} with telemetry; also returns the transaction count
    (PostMark has a single phase, so [ob_phases] is empty). *)
