(** Reproduction of the Section 5 file-system benchmarks. *)

val fig8 : ?quick:bool -> unit -> Report.section list
(** Modified Andrew (Andrew100 and Andrew500): elapsed time for BFS,
    NO-REP and NFS-STD. [quick] runs Andrew5/Andrew25-style reductions. *)

val fig9 : ?quick:bool -> unit -> Report.section list
(** PostMark: transactions per second for BFS, NO-REP and NFS-STD. *)

val all : ?quick:bool -> unit -> Report.section list

val run_andrew :
  ?client_mem:int -> ?server_mem:int -> n:int -> Nfs_rig.backend -> float * int
(** Elapsed seconds and NFS calls for one backend (used by bin/bft_lab). *)

val run_postmark :
  ?files:int -> ?transactions:int -> Nfs_rig.backend -> float * int
(** Elapsed seconds and transaction count. *)
