(** Analytic performance model over {!Bft_sim.Calibration} cost profiles.

    Predicts, from a profile plus the protocol parameters (n, f, batch
    bounds, payload sizes, ordering mode), the per-request CPU and wire
    occupancy at the primary and backups, the closed-loop throughput at a
    given client count, the saturation knee and its binding resource, and
    the unloaded latency — using the same per-message cost formulas the
    simulator charges and the real wire codec for message sizes. The
    [report] entry point compares predictions against the golden
    virtual-time bench rows; CI gates the default profile on
    {!default_tolerance}. *)

type resource = Primary_cpu | Backup_cpu | Link | Client_cpu

val resource_name : resource -> string

type prediction = {
  pr_profile : string;
  pr_clients : int;
  pr_batch : int;  (** modeled steady-state batch size *)
  pr_ops_per_sec : float;  (** predicted closed-loop throughput *)
  pr_knee_ops_per_sec : float;  (** saturation ceiling over all resources *)
  pr_binding : resource;  (** what binds at the ceiling *)
  pr_latency : float;  (** unloaded latency, seconds *)
  pr_primary_cpu : float;  (** CPU seconds per request at the primary *)
  pr_backup_cpu : float;
  pr_client_cpu : float;
  pr_primary_out_bytes : float;  (** egress wire bytes per request *)
  pr_primary_in_bytes : float;
  pr_backup_out_bytes : float;
  pr_backup_in_bytes : float;
}

val predict :
  ?config:Bft_core.Config.t ->
  ?client_machines:int ->
  ?exec_fixed:float ->
  cal:Bft_sim.Calibration.t ->
  arg:int ->
  res:int ->
  clients:int ->
  unit ->
  prediction
(** Single-primary closed-loop prediction for an [arg]/[res] operation at
    [clients] closed-loop clients. [exec_fixed] is the service's own fixed
    execute cost (0 for the null service). *)

val predict_rotating :
  ?config:Bft_core.Config.t ->
  ?client_machines:int ->
  ?exec_fixed:float ->
  cal:Bft_sim.Calibration.t ->
  arg:int ->
  res:int ->
  clients:int ->
  epoch_length:int ->
  unit ->
  float
(** Predicted saturation throughput (ops/s) under rotating ordering: all
    [n] replicas propose concurrently, so ingestion and proposing spread
    [n] ways while execution and replies stay per-request work
    everywhere. *)

(** Parsed golden bench surface (the v2 JSON emitted by
    {!Saturation.virtual_json} / [to_json]). *)
module Golden : sig
  type point = { gp_clients : int; gp_ops_per_sec : float }
  type micro = { gm_label : string; gm_arg : int; gm_res : int; gm_mean_us : float }
  type scale = { gs_groups : int; gs_clients : int; gs_sim_rps : float }

  type rotating = {
    gr_clients : int;
    gr_epoch_length : int;
    gr_single_ops : float;
    gr_ops : float;
  }

  type t = {
    g_profile : string;
    g_seed : int;
    g_micro : micro list;
    g_curve : point list;
    g_scaling : scale list;
    g_rotating : rotating option;
  }

  val parse : string -> t
  (** Parse a bench JSON document. Raises [Failure] with a descriptive
      message on schema/field mismatch. *)
end

type row = {
  rw_label : string;
  rw_unit : string;
  rw_observed : float;
  rw_predicted : float;
  rw_rel_err : float;  (** (predicted - observed) / observed *)
  rw_binding : resource option;  (** throughput rows only *)
}

type report = {
  rp_profile : string;
  rp_tolerance : float;
  rp_rows : row list;
}

val default_tolerance : float
(** 0.25: the documented tolerance band the CI gate enforces on the
    default profile. *)

val report :
  ?config:Bft_core.Config.t ->
  ?tolerance:float ->
  cal:Bft_sim.Calibration.t ->
  golden:Golden.t ->
  unit ->
  report
(** One row per golden bench row: micro latencies, every saturation
    point, the scaling rows, and the rotating comparison. *)

val row_ok : report -> row -> bool

val report_ok : report -> bool
(** Every row within the tolerance band. *)

val render : report -> string
(** Deterministic human-readable table (pure arithmetic, fixed formats). *)

val summary :
  ?config:Bft_core.Config.t ->
  cal:Bft_sim.Calibration.t ->
  arg:int ->
  res:int ->
  unit ->
  string
(** Per-request budget table for one operation shape at full batch: CPU
    and wire occupancy per role, unloaded latency, knee and binding
    resource. *)
