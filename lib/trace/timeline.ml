module Stats = Bft_util.Stats

type t = {
  requests : int;
  incomplete : int;
  client_to_primary : Stats.t;
  ordering : Stats.t;
  execution : Stats.t;
  reply : Stats.t;
  end_to_end : Stats.t;
}

(* Earliest occurrence of each boundary event, per request id. The
   "primary" receipt prefers an explicitly primary-tagged Request_recv
   (the request may also reach backups via multicast) but falls back to
   the earliest receipt of any replica. *)
type cell = {
  mutable sent : float;
  mutable recv_primary : float;
  mutable recv_any : float;
  mutable exec : float;
  mutable reply_sent : float;
  mutable delivered : float;
}

let absent = neg_infinity

let fresh () =
  {
    sent = absent;
    recv_primary = absent;
    recv_any = absent;
    exec = absent;
    reply_sent = absent;
    delivered = absent;
  }

let first current vtime =
  if current = absent || vtime < current then vtime else current

let of_events ?(skip = 0) events =
  let cells : (int64, cell) Hashtbl.t = Hashtbl.create 256 in
  let cell req_id =
    match Hashtbl.find_opt cells req_id with
    | Some c -> c
    | None ->
      let c = fresh () in
      Hashtbl.replace cells req_id c;
      c
  in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.req_id >= 0L then begin
        match e.Trace.kind with
        | Trace.Client_send ->
          let c = cell e.Trace.req_id in
          c.sent <- first c.sent e.Trace.vtime
        | Trace.Request_recv ->
          let c = cell e.Trace.req_id in
          c.recv_any <- first c.recv_any e.Trace.vtime;
          if e.Trace.detail = "primary" then
            c.recv_primary <- first c.recv_primary e.Trace.vtime
        | Trace.Exec_request ->
          let c = cell e.Trace.req_id in
          c.exec <- first c.exec e.Trace.vtime
        | Trace.Reply_sent ->
          let c = cell e.Trace.req_id in
          c.reply_sent <- first c.reply_sent e.Trace.vtime
        | Trace.Client_deliver ->
          let c = cell e.Trace.req_id in
          c.delivered <- first c.delivered e.Trace.vtime
        | _ -> ()
      end)
    events;
  let complete = ref [] and incomplete = ref 0 in
  Hashtbl.iter
    (fun _ c ->
      let recv = if c.recv_primary = absent then c.recv_any else c.recv_primary in
      if
        c.sent = absent || recv = absent || c.exec = absent
        || c.reply_sent = absent || c.delivered = absent
      then incr incomplete
      else complete := (c.sent, recv, c.exec, c.reply_sent, c.delivered) :: !complete)
    cells;
  let ordered =
    List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> Float.compare a b) !complete
  in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  let measured = drop skip ordered in
  let client_to_primary = Stats.create ()
  and ordering = Stats.create ()
  and execution = Stats.create ()
  and reply = Stats.create ()
  and end_to_end = Stats.create () in
  List.iter
    (fun (sent, recv, exec, reply_sent, delivered) ->
      Stats.add client_to_primary (recv -. sent);
      Stats.add ordering (exec -. recv);
      Stats.add execution (reply_sent -. exec);
      Stats.add reply (delivered -. reply_sent);
      Stats.add end_to_end (delivered -. sent))
    measured;
  {
    requests = List.length measured;
    incomplete = !incomplete;
    client_to_primary;
    ordering;
    execution;
    reply;
    end_to_end;
  }

let of_trace ?skip trace = of_events ?skip (Trace.events trace)

let phases t =
  [
    ("client->primary", t.client_to_primary);
    ("ordering", t.ordering);
    ("execution", t.execution);
    ("reply", t.reply);
    ("end-to-end", t.end_to_end);
  ]

let monotone t =
  List.for_all
    (fun (_, s) -> Stats.count s = 0 || Stats.min s >= 0.0)
    (phases t)
