(** Always-on health telemetry: live gauges, typed anomaly detectors, and
    a flight recorder.

    A deployment layer (one replica group of a {!Bft_core.Cluster}, each
    group of a shard rig, a chaos campaign) samples its state into a
    {!gauges} record on a virtual-time cadence and feeds it to {!observe};
    completed client operations are pushed into {!observe_latency}, which
    maintains streaming P² quantile sketches ({!Bft_util.Stats.Sketch}) for
    always-on p50/p95/p99 SLO tracking in O(1) memory.

    Four typed detectors raise structured {!alert}s:

    - {b stalled commit point}: the group-wide commit point stops advancing
      for [stall_after] seconds while reachable replicas report pending
      work;
    - {b silent leader}: the replica that must propose next (the view
      primary, or the current epoch owner under rotating ordering, as
      reported by the replicas' [r_ordering_owner] gauge) is unreachable
      or makes no execution progress for [silent_after] seconds while work
      is pending;
    - {b divergent checkpoint}: two reachable replicas report different
      digests for the same stable checkpoint sequence number;
    - {b SLO breach}: the streaming latency p99 exceeds [slo_p99];
    - {b overload}: the p99 of {e admitted} traffic exceeds [slo_p99]
      while admission control is actively shedding — shedding by itself is
      healthy degradation (a gauge, never an alert), but a tail-latency
      breach on the traffic that {e was} admitted means the shed rate is
      not absorbing the excess.

    Detectors are edge-triggered (one alert per episode, re-armed when the
    condition clears). The monitor is pure arithmetic over observations —
    no randomness, no wall clock — so attaching one never perturbs a run's
    virtual-time results.

    When a flight recorder is installed ({!set_flight_recorder}), every
    alert — and every external {!trigger}, e.g. a chaos invariant
    violation — dumps a replayable JSONL post-mortem bundle: a header with
    caller metadata (seed, plan), the alert log, the SLO summary, the
    recent gauge window, the CPU profile and the newest protocol-trace
    events. *)

(** One replica's health gauges as sampled by the deployment layer. *)
type replica_gauges = {
  r_id : int;
  r_reachable : bool;
      (** scrape succeeded: the machine is up from the monitor's vantage *)
  r_view : int;
  r_last_executed : int;
  r_last_committed : int;
  r_last_stable : int;
  r_stable_digest : string;  (** printable digest of the stable checkpoint *)
  r_queue_depth : int;  (** primary batching queue *)
  r_backlog : int;  (** requests received but not yet executed *)
  r_log_depth : int;  (** live slots in the message log *)
  r_replay_dropped : int;  (** cumulative authenticator replays dropped *)
  r_shed : int;  (** cumulative requests shed by admission control *)
  r_null_fill : int;
      (** cumulative rotating-mode null fills: own slots abandoned below an
          epoch handoff and filled with null batches *)
  r_reclaim : int;
      (** cumulative rotating-mode reclaims: a silent owner's in-window
          slots nulled by the primary *)
  r_ordering_owner : int;
      (** who this replica expects to propose the next uncommitted slot:
          the view primary, or the current epoch owner under rotating
          ordering (-1 if unknown) *)
}

(** One sampling tick over a whole replica group. *)
type gauges = {
  g_time : float;
  g_completed : int;  (** cumulative client operations completed *)
  g_rejected : int;  (** cumulative client operations explicitly rejected *)
  g_replicas : replica_gauges array;
}

type limits = {
  stall_after : float;  (** seconds without commit progress under load *)
  silent_after : float;  (** seconds of leader silence under load *)
  slo_p99 : float;  (** latency SLO in seconds *)
  slo_min_samples : int;  (** sketch samples before the SLO detector arms *)
}

val default_limits : limits
(** Stall/silence thresholds sit below the protocol's 0.25 s view-change
    timeout (so a dead primary is flagged while backups still wait it out)
    and far above healthy inter-commit gaps; SLO p99 is 0.5 s over at
    least 50 samples. *)

type alert_kind =
  | Stalled_commit of { seqno : int; stuck_for : float; backlog : int }
  | Silent_leader of { view : int; primary : int; silent_for : float }
  | Divergent_checkpoint of { seqno : int; replicas : (int * string) list }
  | Slo_breach of { p99 : float; limit : float; samples : int }
  | Overload of { shed_rate : float; p99 : float; limit : float }

type alert = { a_at : float; a_group : string; a_kind : alert_kind }

val kind_name : alert_kind -> string
(** Stable dotted name, e.g. ["monitor.silent_leader"]. *)

val alert_detail : alert -> string
(** One-line human rendering. *)

val alert_json : alert -> string
(** One JSON object (no trailing newline), fixed field order. *)

type t

val create : ?limits:limits -> ?window:int -> ?group:string -> unit -> t
(** [window] bounds the gauge ring kept for post-mortem bundles (default
    256 ticks); [group] labels alerts and bundles (e.g. ["g0/"]). *)

val group : t -> string

val limits : t -> limits

val observe : t -> gauges -> unit
(** Feed one sampling tick: updates derived gauges and runs every
    detector. Ticks must arrive in non-decreasing [g_time] order. *)

val observe_latency : t -> float -> unit
(** Feed one completed client operation's latency (seconds). *)

val alerts : t -> alert list
(** All alerts raised, oldest first. *)

val alert_count : t -> int

val healthy : t -> bool
(** No alerts so far. *)

val alerts_json : t -> string
(** JSON array of {!alert_json} objects. *)

val latency_sketch : t -> Bft_util.Stats.Sketch.t
(** The streaming SLO sketch (p50/p95/p99 over all observed latencies). *)

val throughput : t -> float
(** Completions per virtual second over the last sampling interval. *)

val view_changes : t -> int
(** Cumulative view advances observed across sampling ticks. *)

val checkpoint_lag : t -> int
(** Max (last_executed - last_stable) over reachable replicas, newest
    tick. *)

val replay_drops : t -> int
(** Total authenticator replays dropped, newest tick. *)

val shed_total : t -> int
(** Total requests shed by admission control, newest tick. *)

val shed_rate : t -> float
(** Sheds per virtual second over the last sampling interval. *)

val rejected_total : t -> int
(** Total client operations explicitly rejected, newest tick. *)

val null_fill_total : t -> int
(** Total rotating-mode null fills across replicas, newest tick. *)

val reclaim_total : t -> int
(** Total rotating-mode owner reclaims across replicas, newest tick. *)

val peak_queue : t -> int
(** Highest per-replica admission-queue depth ever observed — what the
    chaos "queues stay bounded" invariant checks against the configured
    [admission_queue_limit]. *)

val samples_observed : t -> int
(** Gauge ticks observed so far. *)

val last_gauges : t -> gauges option

val summary : t -> string
(** One-line operator summary (alerts, throughput, SLO quantiles, view
    changes, checkpoint lag, replay drops). *)

val gauges_json : t -> gauges -> string
(** One gauge row as a JSON object (used by bundles and exports). *)

(* --- flight recorder --- *)

val set_flight_recorder :
  ?trace:Trace.t ->
  ?profile:(unit -> Profile.t) ->
  ?trace_last:int ->
  ?on_bundle:(alert option -> string -> unit) ->
  t ->
  unit ->
  unit
(** Arm the flight recorder. On every alert (and {!trigger}) a post-mortem
    bundle is rendered and handed to [on_bundle] ([Some alert] for
    detector alerts, [None] for external triggers); the newest bundle is
    also retained for {!last_bundle}. [trace_last] bounds the number of
    newest protocol-trace events embedded (default 512); [profile] is
    called at dump time for the CPU breakdown. *)

val set_meta : t -> (string * string) list -> unit
(** Key/value pairs embedded in the bundle header — a chaos campaign
    records its seed and plan text here, which is what makes the bundle
    replayable on its own. *)

val trigger : t -> at:float -> reason:string -> unit
(** External post-mortem trigger (e.g. a chaos invariant violation): dump
    a bundle without raising an alert. No-op unless a recorder is armed. *)

val last_bundle : t -> string option
(** The newest post-mortem bundle, if any was dumped. *)

val bundle_count : t -> int
