(** Per-node, per-category virtual-time CPU cost breakdown.

    Generic over category labels so the trace library stays independent of
    the simulator: callers supply each node's per-category busy-seconds
    array plus the busy total reported by the CPU model, and the balance
    check is exact float equality because [node_total] folds the array in
    the same index order the CPU model uses to define its total. *)

type node = {
  pn_name : string;
  pn_seconds : float array;  (** busy seconds by category index *)
  pn_busy : float;  (** busy total reported by the CPU model *)
}

type t

val make : labels:string array -> (string * float array * float) list -> t
(** [make ~labels nodes] with each node as (name, per-category seconds,
    busy total). Raises [Invalid_argument] on category arity mismatch. *)

val labels : t -> string array

val nodes : t -> node list

val node_total : node -> float
(** Index-order fold of [pn_seconds]. *)

val balanced_node : node -> bool
(** [node_total n = n.pn_busy], exact float equality. *)

val balanced : t -> bool
(** Every node balanced: the profiler accounts for all busy time. *)

val totals : t -> float array
(** Cluster-wide busy seconds by category. *)

val total_busy : t -> float

val share : t -> int -> float
(** Category [i]'s fraction of cluster-wide busy time; 0 when idle. *)

val jsonl : t -> string
(** One JSON object per node, microsecond fields, fixed formatting. *)
