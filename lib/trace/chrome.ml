(* Chrome trace-event export (chrome://tracing, Perfetto legacy JSON).

   One track (tid) per protocol principal: replicas and clients each get a
   thread inside a single process, named from the kinds they emit. Request
   lifetimes and per-batch ordering phases become "X" complete events;
   retransmits, batch executions, view changes and stable checkpoints
   become "i" instants. Only core-layer events are exported — network and
   engine events use a different node-id space (see Trace) and would
   collide with protocol principals.

   Output is deterministic: fixed field order, fixed float formatting
   (microseconds, three decimals), and record order derived only from the
   event list. Equal traces render byte-identically. *)

let pid = 1

type milestones = {
  mutable ms_preprepare : float; (* nan until seen *)
  mutable ms_prepared : float;
  mutable ms_committed : float;
}

let us t = t *. 1e6

let is_core (e : Trace.event) =
  e.Trace.node >= 0
  &&
  match e.Trace.kind with
  | Trace.Sim_fire | Trace.Net_enqueue | Trace.Net_serialize
  | Trace.Net_deliver | Trace.Net_drop ->
    false
  | _ -> true

let is_client_kind = function
  | Trace.Client_send | Trace.Client_retransmit | Trace.Client_deliver -> true
  | _ -> false

let of_events events =
  let events = List.filter is_core events in
  (* Classify principals so tracks get readable names. *)
  let node_kind : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let node_order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      let client = is_client_kind e.Trace.kind in
      match Hashtbl.find_opt node_kind e.Trace.node with
      | None ->
        Hashtbl.add node_kind e.Trace.node client;
        node_order := e.Trace.node :: !node_order
      | Some was -> if client && not was then Hashtbl.replace node_kind e.Trace.node true)
    events;
  let nodes = List.sort compare (List.rev !node_order) in
  let records = ref [] in
  let add r = records := r :: !records in
  (* Track metadata, ascending node id. *)
  List.iter
    (fun node ->
      let name =
        if Hashtbl.find node_kind node then Printf.sprintf "client %d" node
        else Printf.sprintf "replica %d" node
      in
      add
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
           pid node name);
      add
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":%d}}"
           pid node node))
    nodes;
  let complete ~node ~name ~cat ~start ~stop ~args =
    let dur = Float.max 0.0 (us stop -. us start) in
    add
      (Printf.sprintf
         "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"%s\"%s}"
         pid node (us start) dur name cat
         (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args))
  in
  let instant ~node ~vtime ~name ~cat ~args =
    add
      (Printf.sprintf
         "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\"%s}"
         pid node (us vtime) name cat
         (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args))
  in
  (* Request lifetime spans on the client track. *)
  let sends : (int64, float * int) Hashtbl.t = Hashtbl.create 64 in
  (* Ordering milestones per (node, view, seq). *)
  let order : (int * int * int, milestones) Hashtbl.t = Hashtbl.create 64 in
  let milestones key =
    match Hashtbl.find_opt order key with
    | Some m -> m
    | None ->
      let m = { ms_preprepare = nan; ms_prepared = nan; ms_committed = nan } in
      Hashtbl.add order key m;
      m
  in
  (* View-change windows per node. *)
  let vc_start : (int, float * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let node = e.Trace.node and vtime = e.Trace.vtime in
      match e.Trace.kind with
      | Trace.Client_send -> Hashtbl.replace sends e.Trace.req_id (vtime, node)
      | Trace.Client_retransmit ->
        instant ~node ~vtime ~name:"retransmit" ~cat:"client"
          ~args:(Printf.sprintf "\"req\":%Ld" e.Trace.req_id)
      | Trace.Client_deliver -> (
        match Hashtbl.find_opt sends e.Trace.req_id with
        | Some (start, snode) when snode = node ->
          complete ~node ~name:(Printf.sprintf "req %Ld" e.Trace.req_id)
            ~cat:"request" ~start ~stop:vtime
            ~args:(Printf.sprintf "\"retries\":\"%s\"" e.Trace.detail)
        | _ ->
          instant ~node ~vtime ~name:"deliver" ~cat:"client"
            ~args:(Printf.sprintf "\"req\":%Ld" e.Trace.req_id))
      | Trace.Preprepare_sent | Trace.Preprepare_accepted ->
        let m = milestones (node, e.Trace.view, e.Trace.seqno) in
        if Float.is_nan m.ms_preprepare then m.ms_preprepare <- vtime
      | Trace.Prepared ->
        let m = milestones (node, e.Trace.view, e.Trace.seqno) in
        if Float.is_nan m.ms_prepared then begin
          m.ms_prepared <- vtime;
          if not (Float.is_nan m.ms_preprepare) then
            complete ~node
              ~name:(Printf.sprintf "prepare v%d/%d" e.Trace.view e.Trace.seqno)
              ~cat:"ordering" ~start:m.ms_preprepare ~stop:vtime ~args:""
        end
      | Trace.Committed ->
        let m = milestones (node, e.Trace.view, e.Trace.seqno) in
        if Float.is_nan m.ms_committed then begin
          m.ms_committed <- vtime;
          if not (Float.is_nan m.ms_prepared) then
            complete ~node
              ~name:(Printf.sprintf "commit v%d/%d" e.Trace.view e.Trace.seqno)
              ~cat:"ordering" ~start:m.ms_prepared ~stop:vtime ~args:""
        end
      | Trace.Exec_tentative | Trace.Exec_final ->
        instant ~node ~vtime
          ~name:
            (Printf.sprintf "%s %d"
               (if e.Trace.kind = Trace.Exec_tentative then "exec-tentative"
                else "exec-final")
               e.Trace.seqno)
          ~cat:"exec" ~args:""
      | Trace.Viewchange_start -> Hashtbl.replace vc_start node (vtime, e.Trace.view)
      | Trace.Viewchange_end -> (
        match Hashtbl.find_opt vc_start node with
        | Some (start, _) ->
          Hashtbl.remove vc_start node;
          complete ~node
            ~name:(Printf.sprintf "view-change v%d" e.Trace.view)
            ~cat:"viewchange" ~start ~stop:vtime ~args:""
        | None ->
          instant ~node ~vtime
            ~name:(Printf.sprintf "view-change v%d" e.Trace.view)
            ~cat:"viewchange" ~args:"")
      | Trace.Checkpoint_stable ->
        instant ~node ~vtime
          ~name:(Printf.sprintf "checkpoint %d" e.Trace.seqno)
          ~cat:"checkpoint" ~args:""
      | Trace.Request_recv | Trace.Exec_request | Trace.Reply_sent
      | Trace.Sim_fire | Trace.Net_enqueue | Trace.Net_serialize
      | Trace.Net_deliver | Trace.Net_drop ->
        ())
    events;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf r)
    (List.rev !records);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
