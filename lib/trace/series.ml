(* Fixed-cadence time series of counter/gauge snapshots.

   A [Series.t] is a bounded ring of (virtual time, values) samples with a
   fixed column set declared at creation. The sampling cadence lives with
   the caller (normally an engine timer): this module only stores and
   renders, which keeps bft_trace independent of the simulator. Rendering
   uses fixed float formats so equal series export byte-identically. *)

type t = {
  names : string array;
  capacity : int;
  times : float array;
  ring : float array array; (* sample slot -> values (length = names) *)
  mutable total_ : int;
}

let create ?(capacity = 4096) ~names () =
  if capacity <= 0 then invalid_arg "Series.create: capacity";
  if Array.length names = 0 then invalid_arg "Series.create: no columns";
  {
    names = Array.copy names;
    capacity;
    times = Array.make capacity 0.0;
    ring = Array.make capacity [||];
    total_ = 0;
  }

let names t = Array.copy t.names

let record t ~vtime values =
  if Array.length values <> Array.length t.names then
    invalid_arg "Series.record: column arity mismatch";
  let slot = t.total_ mod t.capacity in
  t.times.(slot) <- vtime;
  t.ring.(slot) <- Array.copy values;
  t.total_ <- t.total_ + 1

let total t = t.total_

let length t = Stdlib.min t.total_ t.capacity

let dropped t = t.total_ - length t

let iter t f =
  let n = length t in
  let first = t.total_ - n in
  for i = first to t.total_ - 1 do
    let slot = i mod t.capacity in
    f t.times.(slot) t.ring.(slot)
  done

let samples t =
  let acc = ref [] in
  iter t (fun vtime values -> acc := (vtime, Array.copy values) :: !acc);
  List.rev !acc

let jsonl t =
  let b = Buffer.create 4096 in
  iter t (fun vtime values ->
      Buffer.add_string b (Printf.sprintf "{\"t\":%.9f" vtime);
      Array.iteri
        (fun i v ->
          Buffer.add_string b
            (Printf.sprintf ",\"%s\":%.9g" (Trace.escape t.names.(i)) v))
        values;
      Buffer.add_string b "}\n");
  Buffer.contents b
