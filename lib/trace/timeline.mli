(** Per-request phase timelines folded out of a protocol trace.

    Each completed request is decomposed into four phases whose
    boundaries are trace events, chosen so the phases telescope exactly
    to the client-observed end-to-end latency:

    - {b client→primary}: client transmits the request
      ([Client_send]) → the primary receives it ([Request_recv]).
    - {b ordering}: primary receipt → the first replica executes the
      request ([Exec_request]) — the pre-prepare/prepare (and, without
      tentative execution, commit) rounds.
    - {b execution}: first execution → the first reply leaves a replica
      ([Reply_sent]) — service upcall plus reply construction.
    - {b reply}: first reply sent → the client accepts a reply quorum
      ([Client_deliver]) — the wire back plus quorum wait.

    Requests missing any boundary event (incomplete at the end of the
    run, or evicted from the trace ring) are skipped and counted in
    [incomplete]. *)

type t = {
  requests : int;  (** complete request timelines folded *)
  incomplete : int;  (** request ids seen but missing a boundary event *)
  client_to_primary : Bft_util.Stats.t;
  ordering : Bft_util.Stats.t;
  execution : Bft_util.Stats.t;
  reply : Bft_util.Stats.t;
  end_to_end : Bft_util.Stats.t;  (** per-request sum of the four phases *)
}

val of_events : ?skip:int -> Trace.event list -> t
(** Fold a trace. [skip] (default 0) drops the earliest-started [skip]
    complete requests — e.g. a benchmark's warmup window. *)

val of_trace : ?skip:int -> Trace.t -> t

val phases : t -> (string * Bft_util.Stats.t) list
(** The four phases plus ["end-to-end"], in timeline order. *)

val monotone : t -> bool
(** All folded phase durations are non-negative, i.e. every per-request
    timeline is monotone in virtual time. *)
