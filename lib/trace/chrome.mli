(** Chrome trace-event JSON export (chrome://tracing / Perfetto legacy).

    One track per protocol principal inside a single process: request
    lifetimes and per-batch ordering phases render as duration events,
    retransmits / batch executions / view changes / stable checkpoints as
    instants. Only core-layer events are exported; network and engine
    events use a different node-id space and are skipped.

    The export is deterministic — fixed field order and float formatting —
    so equal traces produce byte-identical files. *)

val of_events : Trace.event list -> string
(** Render events (oldest first, as {!Trace.events} returns) to a complete
    JSON document. *)
