(** Deterministic protocol tracing.

    A [Trace.t] is a bounded ring buffer of typed events shared by every
    layer of one simulation (engine, network, replicas, clients). Tracing
    is off by default: the [nil] sink never records anything and every
    instrumentation site guards on {!enabled}, so the disabled cost is a
    field load and a branch. When enabled, a run is fully deterministic —
    identical seed and configuration produce a byte-identical {!jsonl}
    export — because events are only emitted from simulation callbacks
    and never consult wall-clock time or extra randomness.

    Events carry the emitting principal in [node]. Core-layer events use
    protocol principal ids (replicas [0..n-1], clients [n..]); network
    events use network node ids and put the host name in [detail];
    engine events use [-1]. *)

type kind =
  | Sim_fire  (** discrete event dispatched by the engine *)
  | Net_enqueue  (** datagram handed to the sender's egress link *)
  | Net_serialize  (** egress serialization completed *)
  | Net_deliver  (** datagram handed to the receiver's handler *)
  | Net_drop  (** datagram lost (detail: overflow|fault|blocked|down) *)
  | Client_send  (** client transmitted a fresh request *)
  | Client_retransmit
  | Client_deliver  (** client accepted a reply quorum *)
  | Request_recv  (** replica received a fresh request *)
  | Preprepare_sent
  | Preprepare_accepted
  | Prepared
  | Committed
  | Exec_request  (** one request executed (detail: tentative|final|read-only) *)
  | Exec_tentative  (** batch executed tentatively *)
  | Exec_final  (** batch executed after commit *)
  | Reply_sent
  | Viewchange_start
  | Viewchange_end
  | Checkpoint_stable

type event = {
  vtime : float;  (** virtual seconds *)
  node : int;
  kind : kind;
  seqno : int;  (** -1 when not applicable *)
  view : int;  (** -1 when not applicable *)
  req_id : int64;  (** -1 when not applicable; see {!req_id} *)
  detail : string;
}

type t

val nil : t
(** The disabled sink: records nothing, costs (almost) nothing. *)

val create : ?capacity:int -> ?sim_events:bool -> unit -> t
(** A live sink keeping the newest [capacity] events (default 65536).
    [sim_events] (default false) additionally records one [Sim_fire] per
    engine event — complete but very chatty. *)

val enabled : t -> bool

val sim_events : t -> bool
(** Whether engine-level [Sim_fire] events should be emitted into [t]. *)

val emit :
  t ->
  vtime:float ->
  node:int ->
  ?seqno:int ->
  ?view:int ->
  ?req_id:int64 ->
  ?detail:string ->
  kind ->
  unit
(** Record one event; a no-op on a disabled sink. Call sites on hot paths
    should guard with [if Trace.enabled t then ...] so the disabled cost
    stays a branch. *)

val total : t -> int
(** Events ever emitted (including those evicted by the ring). *)

val length : t -> int
(** Events currently held. *)

val dropped : t -> int
(** Events evicted by ring overflow ([total - length]). *)

val events : t -> event list
(** Surviving events, oldest first (emission order). *)

val iter : t -> (event -> unit) -> unit

val clear : t -> unit

val req_id : client:int -> ts:int64 -> int64
(** Globally unique request id: the client principal in the high bits,
    the client's timestamp in the low 40. *)

val kind_name : kind -> string
(** Stable dotted name, e.g. ["replica.prepared"]. *)

val escape : string -> string
(** Escape a string for embedding in a JSON string literal; shared by the
    sibling exporters. *)

val event_jsonl : event -> string
(** One JSON object, no trailing newline; fixed key order and float
    formatting so equal traces render byte-identically. *)

val jsonl : t -> string
(** All surviving events, one JSON object per line. *)
