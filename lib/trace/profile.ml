(* Per-node, per-category CPU cost breakdown.

   This module is generic over category labels so that bft_trace does not
   depend on the simulator: the caller (normally the workload layer) feeds
   it each node's per-category busy-seconds array together with the busy
   total reported by the CPU model. [node_total] folds the array in index
   order — the same fold the CPU model uses to define its busy total — so
   the balance check is exact float equality, not a tolerance. *)

type node = {
  pn_name : string;
  pn_seconds : float array; (* busy seconds by category index *)
  pn_busy : float; (* busy total reported by the cpu model *)
}

type t = { labels : string array; nodes : node list }

let make ~labels nodes =
  let t =
    {
      labels;
      nodes =
        List.map
          (fun (pn_name, pn_seconds, pn_busy) ->
            if Array.length pn_seconds <> Array.length labels then
              invalid_arg "Profile.make: category arity mismatch";
            { pn_name; pn_seconds; pn_busy })
          nodes;
    }
  in
  t

let labels t = t.labels

let nodes t = t.nodes

let node_total n = Array.fold_left ( +. ) 0.0 n.pn_seconds

let balanced_node n = node_total n = n.pn_busy

let balanced t = List.for_all balanced_node t.nodes

let totals t =
  let acc = Array.make (Array.length t.labels) 0.0 in
  List.iter
    (fun n ->
      Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) n.pn_seconds)
    t.nodes;
  acc

let total_busy t = List.fold_left (fun acc n -> acc +. n.pn_busy) 0.0 t.nodes

let share t i =
  let tot = total_busy t in
  if tot <= 0.0 then 0.0 else (totals t).(i) /. tot

let jsonl t =
  let b = Buffer.create 512 in
  List.iter
    (fun n ->
      Buffer.add_string b (Printf.sprintf "{\"node\":%S" n.pn_name);
      Array.iteri
        (fun i x ->
          Buffer.add_string b
            (Printf.sprintf ",\"%s_us\":%.3f" t.labels.(i) (x *. 1e6)))
        n.pn_seconds;
      Buffer.add_string b
        (Printf.sprintf ",\"busy_us\":%.3f,\"balanced\":%b}\n"
           (n.pn_busy *. 1e6) (balanced_node n)))
    t.nodes;
  Buffer.contents b
