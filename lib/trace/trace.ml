type kind =
  | Sim_fire
  | Net_enqueue
  | Net_serialize
  | Net_deliver
  | Net_drop
  | Client_send
  | Client_retransmit
  | Client_deliver
  | Request_recv
  | Preprepare_sent
  | Preprepare_accepted
  | Prepared
  | Committed
  | Exec_request
  | Exec_tentative
  | Exec_final
  | Reply_sent
  | Viewchange_start
  | Viewchange_end
  | Checkpoint_stable

type event = {
  vtime : float;
  node : int;
  kind : kind;
  seqno : int;
  view : int;
  req_id : int64;
  detail : string;
}

let dummy_event =
  {
    vtime = 0.0;
    node = -1;
    kind = Sim_fire;
    seqno = -1;
    view = -1;
    req_id = -1L;
    detail = "";
  }

type t = {
  enabled : bool;
  sim_events_ : bool;
  capacity : int;
  ring : event array;
  mutable total_ : int;
}

let nil =
  { enabled = false; sim_events_ = false; capacity = 0; ring = [||]; total_ = 0 }

let create ?(capacity = 65536) ?(sim_events = false) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  {
    enabled = true;
    sim_events_ = sim_events;
    capacity;
    ring = Array.make capacity dummy_event;
    total_ = 0;
  }

let enabled t = t.enabled

let sim_events t = t.enabled && t.sim_events_

let emit t ~vtime ~node ?(seqno = -1) ?(view = -1) ?(req_id = -1L)
    ?(detail = "") kind =
  if t.enabled then begin
    t.ring.(t.total_ mod t.capacity) <-
      { vtime; node; kind; seqno; view; req_id; detail };
    t.total_ <- t.total_ + 1
  end

let total t = t.total_

let length t = Stdlib.min t.total_ t.capacity

let dropped t = t.total_ - length t

let iter t f =
  let n = length t in
  let first = t.total_ - n in
  for i = first to t.total_ - 1 do
    f t.ring.(i mod t.capacity)
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let clear t = t.total_ <- 0

(* Client timestamps are small sequential integers; 40 bits leaves room
   for ~10^12 requests per client while keeping ids readable. *)
let req_id ~client ~ts = Int64.logor (Int64.shift_left (Int64.of_int client) 40) ts

let kind_name = function
  | Sim_fire -> "sim.fire"
  | Net_enqueue -> "net.enqueue"
  | Net_serialize -> "net.serialize"
  | Net_deliver -> "net.deliver"
  | Net_drop -> "net.drop"
  | Client_send -> "client.send"
  | Client_retransmit -> "client.retransmit"
  | Client_deliver -> "client.deliver"
  | Request_recv -> "replica.request_recv"
  | Preprepare_sent -> "replica.preprepare_sent"
  | Preprepare_accepted -> "replica.preprepare_accepted"
  | Prepared -> "replica.prepared"
  | Committed -> "replica.committed"
  | Exec_request -> "replica.exec_request"
  | Exec_tentative -> "replica.exec_tentative"
  | Exec_final -> "replica.exec_final"
  | Reply_sent -> "replica.reply_sent"
  | Viewchange_start -> "replica.viewchange_start"
  | Viewchange_end -> "replica.viewchange_end"
  | Checkpoint_stable -> "replica.checkpoint_stable"

(* Only [detail] can hold arbitrary bytes; everything else formats from
   numbers, so escaping the single string keeps the export valid JSON. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_jsonl e =
  Printf.sprintf
    "{\"t\":%.9f,\"node\":%d,\"kind\":\"%s\",\"seq\":%d,\"view\":%d,\"req\":%Ld,\"detail\":\"%s\"}"
    e.vtime e.node (kind_name e.kind) e.seqno e.view e.req_id (escape e.detail)

let jsonl t =
  let b = Buffer.create 4096 in
  iter t (fun e ->
      Buffer.add_string b (event_jsonl e);
      Buffer.add_char b '\n');
  Buffer.contents b
