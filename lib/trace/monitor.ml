(* Always-on health monitor: periodic gauge observation, typed anomaly
   detectors, streaming SLO quantiles, and a flight recorder.

   The monitor is deliberately passive and generic: it knows nothing about
   the simulator or the protocol modules. A deployment layer (Cluster, the
   shard Rig, a chaos campaign) samples its own state into a [gauges]
   record on a virtual-time cadence and feeds it to [observe]; completed
   client operations are pushed into [observe_latency]. Everything the
   monitor does is pure arithmetic on those observations — no randomness,
   no wall clock, no CPU charges — so attaching a monitor never perturbs a
   run's virtual-time results.

   Detectors are edge-triggered: an alert fires once when its condition
   crosses the configured limit and re-arms only after the condition
   clears, so a persistent fault yields one typed alert, not one per
   sampling tick. *)

module Stats = Bft_util.Stats

(* --- observations ----------------------------------------------------- *)

type replica_gauges = {
  r_id : int;
  r_reachable : bool;
      (** scrape succeeded: the machine is up from the monitor's vantage *)
  r_view : int;
  r_last_executed : int;
  r_last_committed : int;
  r_last_stable : int;
  r_stable_digest : string;  (** printable digest of the stable checkpoint *)
  r_queue_depth : int;  (** primary batching queue *)
  r_backlog : int;  (** requests received but not yet executed *)
  r_log_depth : int;  (** live slots in the message log *)
  r_replay_dropped : int;  (** cumulative authenticator replays dropped *)
  r_shed : int;  (** cumulative requests shed by admission control *)
  r_null_fill : int;
      (** cumulative rotating-mode null fills: own slots abandoned below an
          epoch handoff and filled with null batches *)
  r_reclaim : int;
      (** cumulative rotating-mode reclaims: a silent owner's in-window
          slots nulled by the primary *)
  r_ordering_owner : int;
      (** who this replica expects to propose the next uncommitted slot:
          the view primary, or the current epoch owner under rotating
          ordering *)
}

type gauges = {
  g_time : float;
  g_completed : int;  (** cumulative client operations completed *)
  g_rejected : int;  (** cumulative client operations explicitly rejected *)
  g_replicas : replica_gauges array;
}

(* --- limits ----------------------------------------------------------- *)

type limits = {
  stall_after : float;
  silent_after : float;
  slo_p99 : float;
  slo_min_samples : int;
}

(* [stall_after]/[silent_after] sit below the protocol's view-change
   timeout (0.25 s by default) so a crashed primary is flagged while the
   backups are still waiting it out, yet far above any pause a healthy
   cluster shows between commits (microseconds to low milliseconds). *)
let default_limits =
  { stall_after = 0.2; silent_after = 0.15; slo_p99 = 0.5; slo_min_samples = 50 }

(* --- alerts ----------------------------------------------------------- *)

type alert_kind =
  | Stalled_commit of { seqno : int; stuck_for : float; backlog : int }
  | Silent_leader of { view : int; primary : int; silent_for : float }
  | Divergent_checkpoint of { seqno : int; replicas : (int * string) list }
  | Slo_breach of { p99 : float; limit : float; samples : int }
  | Overload of { shed_rate : float; p99 : float; limit : float }

type alert = { a_at : float; a_group : string; a_kind : alert_kind }

let kind_name = function
  | Stalled_commit _ -> "monitor.stalled_commit"
  | Silent_leader _ -> "monitor.silent_leader"
  | Divergent_checkpoint _ -> "monitor.divergent_checkpoint"
  | Slo_breach _ -> "monitor.slo_breach"
  | Overload _ -> "monitor.overload"

let alert_detail a =
  match a.a_kind with
  | Stalled_commit { seqno; stuck_for; backlog } ->
    Printf.sprintf "commit point stuck at seq %d for %.3f s with backlog %d"
      seqno stuck_for backlog
  | Silent_leader { view; primary; silent_for } ->
    Printf.sprintf "primary %d of view %d silent for %.3f s with work pending"
      primary view silent_for
  | Divergent_checkpoint { seqno; replicas } ->
    Printf.sprintf "stable checkpoint %d digests diverge: %s" seqno
      (String.concat ", "
         (List.map (fun (r, d) -> Printf.sprintf "r%d=%s" r d) replicas))
  | Slo_breach { p99; limit; samples } ->
    Printf.sprintf "latency p99 %.1f ms over SLO %.1f ms (%d samples)"
      (p99 *. 1e3) (limit *. 1e3) samples
  | Overload { shed_rate; p99; limit } ->
    Printf.sprintf
      "overload: admitted-traffic p99 %.1f ms over SLO %.1f ms while \
       shedding %.0f req/s — admission control is not absorbing the excess"
      (p99 *. 1e3) (limit *. 1e3) shed_rate

let alert_json a =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"at\":%.6f,\"group\":\"%s\",\"kind\":\"%s\""
    a.a_at (Trace.escape a.a_group) (kind_name a.a_kind);
  (match a.a_kind with
  | Stalled_commit { seqno; stuck_for; backlog } ->
    Printf.bprintf b ",\"seqno\":%d,\"stuck_for\":%.6f,\"backlog\":%d" seqno
      stuck_for backlog
  | Silent_leader { view; primary; silent_for } ->
    Printf.bprintf b ",\"view\":%d,\"primary\":%d,\"silent_for\":%.6f" view
      primary silent_for
  | Divergent_checkpoint { seqno; replicas } ->
    Printf.bprintf b ",\"seqno\":%d,\"digests\":[" seqno;
    List.iteri
      (fun i (r, d) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "{\"replica\":%d,\"digest\":\"%s\"}" r (Trace.escape d))
      replicas;
    Buffer.add_char b ']'
  | Slo_breach { p99; limit; samples } ->
    Printf.bprintf b ",\"p99\":%.6f,\"limit\":%.6f,\"samples\":%d" p99 limit
      samples
  | Overload { shed_rate; p99; limit } ->
    Printf.bprintf b ",\"shed_rate\":%.6f,\"p99\":%.6f,\"limit\":%.6f"
      shed_rate p99 limit);
  Printf.bprintf b ",\"detail\":\"%s\"}" (Trace.escape (alert_detail a));
  Buffer.contents b

(* --- the monitor ------------------------------------------------------ *)

type recorder = {
  fr_trace : Trace.t;
  fr_profile : (unit -> Profile.t) option;
  fr_trace_last : int;  (** newest trace events included in a bundle *)
  fr_on_bundle : alert option -> string -> unit;
}

type t = {
  group : string;
  limits : limits;
  sketch : Stats.Sketch.t;
  mutable alerts_rev : alert list;
  mutable alert_count : int;
  (* gauge ring for the flight-recorder window *)
  window : gauges option array;
  mutable seen : int;  (** gauge rows ever observed *)
  (* derived gauges from the newest observation *)
  mutable last : gauges option;
  mutable rate : float;  (** completed ops per virtual second, last interval *)
  mutable view_changes : int;  (** cumulative view advances observed *)
  (* detector state *)
  mutable commit_mark : int;
  mutable commit_advanced_at : float;
  mutable stalled_armed : bool;
  mutable leader_view : int;
  mutable leader_id : int;  (** the proposer currently being watched *)
  mutable leader_progress : int;
  mutable leader_advanced_at : float;
  mutable silent_armed : bool;
  mutable divergence_seen : (int, unit) Hashtbl.t;
  mutable slo_armed : bool;
  (* overload gauges *)
  mutable shed_total : int;  (** cumulative sheds at the newest tick *)
  mutable null_fill_total : int;  (** cumulative rotating null fills *)
  mutable reclaim_total : int;  (** cumulative rotating reclaims *)
  mutable shed_rate : float;  (** sheds per virtual second, last interval *)
  mutable rejected_total : int;  (** cumulative explicit client rejections *)
  mutable peak_queue : int;  (** highest per-replica queue depth observed *)
  (* flight recorder *)
  mutable recorder : recorder option;
  mutable last_bundle : string option;
  mutable bundle_count : int;
  mutable meta : (string * string) list;
}

let create ?(limits = default_limits) ?(window = 256) ?(group = "") () =
  if window < 1 then invalid_arg "Monitor.create: window";
  {
    group;
    limits;
    sketch = Stats.Sketch.create ();
    alerts_rev = [];
    alert_count = 0;
    window = Array.make window None;
    seen = 0;
    last = None;
    rate = 0.0;
    view_changes = 0;
    commit_mark = -1;
    commit_advanced_at = 0.0;
    stalled_armed = true;
    leader_view = -1;
    leader_id = -1;
    leader_progress = -1;
    leader_advanced_at = 0.0;
    silent_armed = true;
    divergence_seen = Hashtbl.create 8;
    slo_armed = true;
    shed_total = 0;
    null_fill_total = 0;
    reclaim_total = 0;
    shed_rate = 0.0;
    rejected_total = 0;
    peak_queue = 0;
    recorder = None;
    last_bundle = None;
    bundle_count = 0;
    meta = [];
  }

let group t = t.group

let limits t = t.limits

let alerts t = List.rev t.alerts_rev

let alert_count t = t.alert_count

let healthy t = t.alert_count = 0

let latency_sketch t = t.sketch

let throughput t = t.rate

let view_changes t = t.view_changes

let samples_observed t = t.seen

let last_gauges t = t.last

let shed_total t = t.shed_total

let null_fill_total t = t.null_fill_total

let reclaim_total t = t.reclaim_total

let shed_rate t = t.shed_rate

let rejected_total t = t.rejected_total

let peak_queue t = t.peak_queue

let set_meta t meta = t.meta <- meta

(* --- gauge-row rendering ---------------------------------------------- *)

let gauges_json t g =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"t\":%.6f,\"group\":\"%s\",\"completed\":%d,\"rejected\":%d,\"replicas\":["
    g.g_time (Trace.escape t.group) g.g_completed g.g_rejected;
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "{\"id\":%d,\"up\":%b,\"view\":%d,\"exec\":%d,\"commit\":%d,\"stable\":%d,\"digest\":\"%s\",\"queue\":%d,\"backlog\":%d,\"log\":%d,\"replay_dropped\":%d,\"shed\":%d,\"null_fill\":%d,\"reclaim\":%d,\"owner\":%d}"
        r.r_id r.r_reachable r.r_view r.r_last_executed r.r_last_committed
        r.r_last_stable (Trace.escape r.r_stable_digest) r.r_queue_depth
        r.r_backlog r.r_log_depth r.r_replay_dropped r.r_shed r.r_null_fill
        r.r_reclaim r.r_ordering_owner)
    g.g_replicas;
  Buffer.add_string b "]}";
  Buffer.contents b

let window_rows t =
  let n = Stdlib.min t.seen (Array.length t.window) in
  let first = t.seen - n in
  let rows = ref [] in
  for i = t.seen - 1 downto first do
    match t.window.(i mod Array.length t.window) with
    | Some g -> rows := g :: !rows
    | None -> ()
  done;
  !rows

(* --- flight recorder -------------------------------------------------- *)

let set_flight_recorder ?(trace = Trace.nil) ?profile ?(trace_last = 512)
    ?(on_bundle = fun _ _ -> ()) t () =
  t.recorder <-
    Some
      {
        fr_trace = trace;
        fr_profile = profile;
        fr_trace_last = trace_last;
        fr_on_bundle = on_bundle;
      }

(* The bundle is replayable JSONL: a [postmortem] header carrying the
   caller's metadata (a chaos campaign records its seed and plan text, so
   the failure can be re-run from the bundle alone), the alert log, the
   SLO summary, the recent gauge window, the CPU profile and the newest
   protocol-trace events — each line one self-describing record. *)
let render_bundle t ~at ~reason alert =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"type\":\"postmortem\",\"at\":%.6f,\"group\":\"%s\",\"reason\":\"%s\""
    at (Trace.escape t.group) (Trace.escape reason);
  List.iter
    (fun (k, v) ->
      Printf.bprintf b ",\"%s\":\"%s\"" (Trace.escape k) (Trace.escape v))
    t.meta;
  Buffer.add_string b "}\n";
  (match alert with
  | Some a ->
    Buffer.add_string b "{\"type\":\"alert\",\"alert\":";
    Buffer.add_string b (alert_json a);
    Buffer.add_string b "}\n"
  | None -> ());
  List.iter
    (fun a ->
      Buffer.add_string b "{\"type\":\"alert_log\",\"alert\":";
      Buffer.add_string b (alert_json a);
      Buffer.add_string b "}\n")
    (alerts t);
  let sk = t.sketch in
  if Stats.Sketch.count sk > 0 then
    Printf.bprintf b
      "{\"type\":\"slo\",\"samples\":%d,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f}\n"
      (Stats.Sketch.count sk) (Stats.Sketch.p50 sk) (Stats.Sketch.p95 sk)
      (Stats.Sketch.p99 sk) (Stats.Sketch.max sk);
  List.iter
    (fun g ->
      Buffer.add_string b "{\"type\":\"gauges\",\"row\":";
      Buffer.add_string b (gauges_json t g);
      Buffer.add_string b "}\n")
    (window_rows t);
  (match t.recorder with
  | Some { fr_profile = Some profile; _ } ->
    let p = profile () in
    String.split_on_char '\n' (Profile.jsonl p)
    |> List.iter (fun line ->
           if line <> "" then begin
             Buffer.add_string b "{\"type\":\"profile\",\"node_profile\":";
             Buffer.add_string b line;
             Buffer.add_string b "}\n"
           end)
  | _ -> ());
  (match t.recorder with
  | Some { fr_trace; fr_trace_last; _ } when Trace.enabled fr_trace ->
    let events = Trace.events fr_trace in
    let total = List.length events in
    let skip = Stdlib.max 0 (total - fr_trace_last) in
    List.iteri
      (fun i e ->
        if i >= skip then begin
          Buffer.add_string b "{\"type\":\"trace\",\"event\":";
          Buffer.add_string b (Trace.event_jsonl e);
          Buffer.add_string b "}\n"
        end)
      events
  | _ -> ());
  Buffer.contents b

let dump_bundle t ~at ~reason alert =
  match t.recorder with
  | None -> ()
  | Some r ->
    let bundle = render_bundle t ~at ~reason alert in
    t.last_bundle <- Some bundle;
    t.bundle_count <- t.bundle_count + 1;
    r.fr_on_bundle alert bundle

let last_bundle t = t.last_bundle

let bundle_count t = t.bundle_count

let trigger t ~at ~reason = dump_bundle t ~at ~reason None

(* --- detectors -------------------------------------------------------- *)

let raise_alert t ~at kind =
  let a = { a_at = at; a_group = t.group; a_kind = kind } in
  t.alerts_rev <- a :: t.alerts_rev;
  t.alert_count <- t.alert_count + 1;
  dump_bundle t ~at ~reason:("alert:" ^ kind_name kind) (Some a)

let observe_latency t latency = Stats.Sketch.add t.sketch latency

let check_slo t ~at =
  let sk = t.sketch in
  if Stats.Sketch.count sk >= t.limits.slo_min_samples then begin
    let p99 = Stats.Sketch.p99 sk in
    if p99 > t.limits.slo_p99 then begin
      if t.slo_armed then begin
        t.slo_armed <- false;
        (* Shedding by itself is healthy degradation (a gauge, never an
           alert); a tail-latency breach on *admitted* traffic while the
           system is already shedding means admission control is not
           absorbing the excess — a distinct, actionable overload alert. *)
        if t.shed_rate > 0.0 then
          raise_alert t ~at
            (Overload { shed_rate = t.shed_rate; p99; limit = t.limits.slo_p99 })
        else
          raise_alert t ~at
            (Slo_breach
               { p99; limit = t.limits.slo_p99; samples = Stats.Sketch.count sk })
      end
    end
    else if p99 < 0.8 *. t.limits.slo_p99 then t.slo_armed <- true
  end

let observe t g =
  let now = g.g_time in
  (* ring the gauge window *)
  t.window.(t.seen mod Array.length t.window) <- Some g;
  t.seen <- t.seen + 1;
  let reachable =
    Array.to_list g.g_replicas |> List.filter (fun r -> r.r_reachable)
  in
  let fold f init = List.fold_left f init reachable in
  let max_committed = fold (fun acc r -> Stdlib.max acc r.r_last_committed) 0 in
  let backlog = fold (fun acc r -> acc + r.r_backlog + r.r_queue_depth) 0 in
  let view = fold (fun acc r -> Stdlib.max acc r.r_view) 0 in
  (* throughput gauge: completions per virtual second since the last tick *)
  (match t.last with
  | Some prev when now > prev.g_time ->
    t.rate <-
      float_of_int (g.g_completed - prev.g_completed) /. (now -. prev.g_time)
  | _ -> ());
  (* overload gauges: cumulative sheds, shed rate over the last interval,
     explicit client rejections, and the highest queue depth ever observed
     (the chaos queue-bound invariant reads [peak_queue]) *)
  let shed_now = Array.fold_left (fun acc r -> acc + r.r_shed) 0 g.g_replicas in
  (match t.last with
  | Some prev when now > prev.g_time ->
    let shed_prev =
      Array.fold_left (fun acc r -> acc + r.r_shed) 0 prev.g_replicas
    in
    t.shed_rate <- float_of_int (shed_now - shed_prev) /. (now -. prev.g_time)
  | _ -> ());
  t.shed_total <- shed_now;
  t.null_fill_total <-
    Array.fold_left (fun acc r -> acc + r.r_null_fill) 0 g.g_replicas;
  t.reclaim_total <-
    Array.fold_left (fun acc r -> acc + r.r_reclaim) 0 g.g_replicas;
  t.rejected_total <- g.g_rejected;
  Array.iter
    (fun r -> if r.r_queue_depth > t.peak_queue then t.peak_queue <- r.r_queue_depth)
    g.g_replicas;
  (* view-change-rate gauge: cumulative view advances *)
  (match t.last with
  | Some prev ->
    let prev_view =
      Array.to_list prev.g_replicas
      |> List.filter (fun r -> r.r_reachable)
      |> List.fold_left (fun acc r -> Stdlib.max acc r.r_view) 0
    in
    if view > prev_view then t.view_changes <- t.view_changes + (view - prev_view)
  | None -> ());
  (* stalled commit point: the group-wide commit point has not advanced
     for [stall_after] while reachable replicas report pending work *)
  if t.commit_mark < 0 || max_committed > t.commit_mark then begin
    t.commit_mark <- max_committed;
    t.commit_advanced_at <- now;
    t.stalled_armed <- true
  end
  else if
    t.stalled_armed && backlog > 0
    && now -. t.commit_advanced_at >= t.limits.stall_after
  then begin
    t.stalled_armed <- false;
    raise_alert t ~at:now
      (Stalled_commit
         {
           seqno = max_committed;
           stuck_for = now -. t.commit_advanced_at;
           backlog;
         })
  end;
  (* silent leader: the replica that must propose next is unreachable or
     making no execution progress while the group has pending work. The
     watched proposer is whatever a reachable replica in the newest view
     reports as its ordering owner — the view primary in single-primary
     mode, the current epoch owner under rotating ordering — so leadership
     handoffs re-aim the detector without a view change. *)
  let n = Array.length g.g_replicas in
  if n > 0 then begin
    let primary =
      match List.find_opt (fun r -> r.r_view = view) reachable with
      | Some r when r.r_ordering_owner >= 0 -> r.r_ordering_owner
      | _ -> view mod n
    in
    let progress =
      match Array.find_opt (fun r -> r.r_id = primary) g.g_replicas with
      | Some r when r.r_reachable -> r.r_last_executed + r.r_last_committed
      | _ -> -1 (* unreachable: no scrape, no progress *)
    in
    if view <> t.leader_view || primary <> t.leader_id then begin
      t.leader_view <- view;
      t.leader_id <- primary;
      t.leader_progress <- progress;
      t.leader_advanced_at <- now;
      t.silent_armed <- true
    end
    else if progress > t.leader_progress then begin
      t.leader_progress <- progress;
      t.leader_advanced_at <- now;
      t.silent_armed <- true
    end
    else if
      t.silent_armed && backlog > 0
      && now -. t.leader_advanced_at >= t.limits.silent_after
    then begin
      t.silent_armed <- false;
      raise_alert t ~at:now
        (Silent_leader
           { view; primary; silent_for = now -. t.leader_advanced_at })
    end
  end;
  (* divergent stable checkpoints: two reachable replicas disagree on the
     digest of the same stable sequence number *)
  let by_seq : (int, int * string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if r.r_stable_digest <> "" then begin
        match Hashtbl.find_opt by_seq r.r_last_stable with
        | None -> Hashtbl.replace by_seq r.r_last_stable (r.r_id, r.r_stable_digest)
        | Some (r0, d0) ->
          if d0 <> r.r_stable_digest
             && not (Hashtbl.mem t.divergence_seen r.r_last_stable)
          then begin
            Hashtbl.replace t.divergence_seen r.r_last_stable ();
            raise_alert t ~at:now
              (Divergent_checkpoint
                 {
                   seqno = r.r_last_stable;
                   replicas = [ (r0, d0); (r.r_id, r.r_stable_digest) ];
                 })
          end
      end)
    reachable;
  (* tail-latency SLO *)
  check_slo t ~at:now;
  t.last <- Some g

(* --- reporting -------------------------------------------------------- *)

let checkpoint_lag t =
  match t.last with
  | None -> 0
  | Some g ->
    Array.fold_left
      (fun acc r ->
        if r.r_reachable then Stdlib.max acc (r.r_last_executed - r.r_last_stable)
        else acc)
      0 g.g_replicas

let replay_drops t =
  match t.last with
  | None -> 0
  | Some g -> Array.fold_left (fun acc r -> acc + r.r_replay_dropped) 0 g.g_replicas

let summary t =
  let sk = t.sketch in
  let quant f = if Stats.Sketch.count sk = 0 then nan else f sk *. 1e3 in
  Printf.sprintf
    "%s%d sample%s, %d alert%s; throughput %.0f ops/s; latency p50 %.2f ms \
     p95 %.2f ms p99 %.2f ms (%d ops); view changes %d; checkpoint lag %d; \
     replay drops %d%s"
    (if t.group = "" then "" else t.group ^ ": ")
    t.seen
    (if t.seen = 1 then "" else "s")
    t.alert_count
    (if t.alert_count = 1 then "" else "s")
    t.rate (quant Stats.Sketch.p50) (quant Stats.Sketch.p95)
    (quant Stats.Sketch.p99) (Stats.Sketch.count sk) t.view_changes
    (checkpoint_lag t) (replay_drops t)
    (if t.shed_total = 0 && t.rejected_total = 0 then ""
     else
       Printf.sprintf "; shed %d (rejected %d, peak queue %d)" t.shed_total
         t.rejected_total t.peak_queue)
    ^ (if t.null_fill_total = 0 && t.reclaim_total = 0 then ""
       else
         Printf.sprintf "; rotate null-fill %d reclaim %d" t.null_fill_total
           t.reclaim_total)

let alerts_json t =
  let b = Buffer.create 128 in
  Buffer.add_char b '[';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (alert_json a))
    (alerts t);
  Buffer.add_char b ']';
  Buffer.contents b
