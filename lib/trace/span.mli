(** Causal request DAGs reconstructed from a protocol trace.

    Spans are phases of a request's life (send, receive, execute, reply,
    deliver) and of a batch's ordering (pre-prepare, prepare, commit). Span
    ids derive deterministically from (request id, view, seqno, phase) via a
    splitmix64 finalizer, so identical traces yield identical DAGs and no
    span id needs to travel on the wire. Retransmissions fold into the
    originating span; cross-view reprocessing creates per-view spans that
    stay linked to the same request. *)

type phase =
  | Request
  | Recv
  | Preprepare
  | Prepare
  | Commit
  | Exec
  | Reply
  | Deliver

val phase_index : phase -> int

val phase_name : phase -> string

val id : req:int64 -> view:int -> seq:int -> phase:phase -> int64
(** Deterministic span id. Use [-1] / [-1L] for inapplicable fields, the
    same convention as trace events. *)

type span = {
  sp_id : int64;
  sp_phase : phase;
  sp_req : int64;  (** [-1L] for batch-level ordering spans *)
  sp_view : int;  (** [-1] when unknown (client-side spans) *)
  mutable sp_seq : int;  (** [-1] until the request is bound to a batch *)
  mutable sp_first : float;  (** earliest contributing event, virtual s *)
  mutable sp_last : float;  (** latest contributing event, virtual s *)
  mutable sp_events : int;  (** contributing events (retransmits fold in) *)
  mutable sp_nodes : int list;  (** distinct principals, first-seen order *)
  mutable sp_parents : int64 list;  (** causal predecessors *)
}

type t

val of_events : Trace.event list -> t
(** Fold a trace (oldest first, as {!Trace.events} returns) into a DAG.
    Deterministic: equal event lists produce identical structures. *)

val spans : t -> span list
(** All spans in creation order. *)

val span_count : t -> int

val edge_count : t -> int
(** Parent edges across all spans. *)

val find : t -> int64 -> span option

val requests : t -> int64 list
(** Request ids in first-appearance order. *)

val delivered : t -> int64 list
(** Requests whose reply quorum was accepted by the client. *)

val check : t -> (int64 * string) list
(** Completeness: for every delivered request, the deliver span must reach
    the request span through parent edges. Returns offenders with reasons;
    empty on a complete DAG. *)

val complete : t -> bool

val summary : t -> string
(** One-line counts: spans, edges, requests, delivered, incomplete. *)
