(* Causal spans over a protocol trace.

   A span is one phase of one request's life (client send, replica receive,
   execute, reply, client deliver) or one phase of one batch's ordering
   (pre-prepare, prepare, commit). Span ids are derived deterministically
   from (request id, view, seqno, phase) with a splitmix64 finalizer, so the
   same trace always yields the same DAG and ids can be recomputed from the
   protocol state alone — nothing rides on the wire.

   Requests are bound to batches without any extra instrumentation by
   exploiting emission order: replicas emit one [Exec_request] per request
   and then the batch-level [Exec_tentative]/[Exec_final] carrying the
   seqno, so the per-node run of exec events since the previous batch event
   is exactly the batch's request set. *)

type phase =
  | Request (* client sent (retransmits fold in) *)
  | Recv (* replica received a fresh request *)
  | Preprepare (* primary proposed / backups accepted (view, seq) *)
  | Prepare (* (view, seq) prepared *)
  | Commit (* (view, seq) committed *)
  | Exec (* request executed (tentative, final or read-only) *)
  | Reply (* replica replied *)
  | Deliver (* client accepted a reply quorum *)

let phase_index = function
  | Request -> 0
  | Recv -> 1
  | Preprepare -> 2
  | Prepare -> 3
  | Commit -> 4
  | Exec -> 5
  | Reply -> 6
  | Deliver -> 7

let phase_name = function
  | Request -> "request"
  | Recv -> "recv"
  | Preprepare -> "preprepare"
  | Prepare -> "prepare"
  | Commit -> "commit"
  | Exec -> "exec"
  | Reply -> "reply"
  | Deliver -> "deliver"

let mix64 z =
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let z = Int64.mul z 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let id ~req ~view ~seq ~phase =
  let h = mix64 (Int64.logxor req 0x9E3779B97F4A7C15L) in
  let h = mix64 (Int64.logxor h (Int64.of_int view)) in
  let h = mix64 (Int64.logxor h (Int64.of_int seq)) in
  mix64 (Int64.logxor h (Int64.of_int (phase_index phase)))

type span = {
  sp_id : int64;
  sp_phase : phase;
  sp_req : int64; (* -1 for batch-level ordering spans *)
  sp_view : int; (* -1 when unknown (client-side spans) *)
  mutable sp_seq : int; (* -1 until bound to a batch *)
  mutable sp_first : float;
  mutable sp_last : float;
  mutable sp_events : int;
  mutable sp_nodes : int list; (* distinct emitting principals, first-seen order *)
  mutable sp_parents : int64 list; (* causal predecessors, first-added order *)
}

(* Per-request index of the spans that matter for causal chaining. *)
type req_info = {
  mutable rq_request : span option;
  mutable rq_recvs : span list;
  mutable rq_execs : span list;
  mutable rq_replies : span list;
  mutable rq_deliver : span option;
}

(* Per-(view, seq) index of the ordering spans. *)
type batch_info = {
  mutable bt_preprepare : span option;
  mutable bt_prepare : span option;
  mutable bt_commit : span option;
}

type t = {
  spans : (int64, span) Hashtbl.t;
  mutable order : span list; (* creation order, reversed *)
  reqs : (int64, req_info) Hashtbl.t;
  mutable req_order : int64 list; (* reversed *)
  batches : (int * int, batch_info) Hashtbl.t;
  mutable edges : int;
}

let create () =
  {
    spans = Hashtbl.create 256;
    order = [];
    reqs = Hashtbl.create 64;
    req_order = [];
    batches = Hashtbl.create 64;
    edges = 0;
  }

let req_info t req =
  match Hashtbl.find_opt t.reqs req with
  | Some r -> r
  | None ->
    let r =
      {
        rq_request = None;
        rq_recvs = [];
        rq_execs = [];
        rq_replies = [];
        rq_deliver = None;
      }
    in
    Hashtbl.add t.reqs req r;
    t.req_order <- req :: t.req_order;
    r

let batch_info t ~view ~seq =
  match Hashtbl.find_opt t.batches (view, seq) with
  | Some b -> b
  | None ->
    let b = { bt_preprepare = None; bt_prepare = None; bt_commit = None } in
    Hashtbl.add t.batches (view, seq) b;
    b

let touch t ~req ~view ~seq ~phase ~vtime ~node =
  let sid = id ~req ~view ~seq ~phase in
  match Hashtbl.find_opt t.spans sid with
  | Some s ->
    if vtime < s.sp_first then s.sp_first <- vtime;
    if vtime > s.sp_last then s.sp_last <- vtime;
    s.sp_events <- s.sp_events + 1;
    if not (List.mem node s.sp_nodes) then s.sp_nodes <- s.sp_nodes @ [ node ];
    s
  | None ->
    let s =
      {
        sp_id = sid;
        sp_phase = phase;
        sp_req = req;
        sp_view = view;
        sp_seq = seq;
        sp_first = vtime;
        sp_last = vtime;
        sp_events = 1;
        sp_nodes = [ node ];
        sp_parents = [];
      }
    in
    Hashtbl.add t.spans sid s;
    t.order <- s :: t.order;
    s

let add_parent t span parent =
  if parent.sp_id <> span.sp_id && not (List.mem parent.sp_id span.sp_parents)
  then begin
    span.sp_parents <- span.sp_parents @ [ parent.sp_id ];
    t.edges <- t.edges + 1
  end

(* The latest ordering span that exists for a batch: the exec of a finally
   executed batch hangs off its commit, a tentative exec off its prepare. *)
let batch_tail b =
  match b.bt_commit with
  | Some _ as s -> s
  | None -> ( match b.bt_prepare with Some _ as s -> s | None -> b.bt_preprepare)

let of_events events =
  let t = create () in
  (* Requests executed on a node since its last batch-level exec event. *)
  let pending_exec : (int, span list ref) Hashtbl.t = Hashtbl.create 16 in
  let pending_for node =
    match Hashtbl.find_opt pending_exec node with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.add pending_exec node l;
      l
  in
  List.iter
    (fun (e : Trace.event) ->
      let vtime = e.Trace.vtime
      and node = e.Trace.node
      and req = e.Trace.req_id
      and view = e.Trace.view
      and seq = e.Trace.seqno in
      match e.Trace.kind with
      | Trace.Client_send | Trace.Client_retransmit ->
        let s = touch t ~req ~view:(-1) ~seq:(-1) ~phase:Request ~vtime ~node in
        let r = req_info t req in
        if r.rq_request = None then r.rq_request <- Some s
      | Trace.Request_recv ->
        let s = touch t ~req ~view ~seq:(-1) ~phase:Recv ~vtime ~node in
        let r = req_info t req in
        if not (List.memq s r.rq_recvs) then r.rq_recvs <- r.rq_recvs @ [ s ];
        Option.iter (fun p -> add_parent t s p) r.rq_request
      | Trace.Preprepare_sent | Trace.Preprepare_accepted ->
        let s =
          touch t ~req:(-1L) ~view ~seq ~phase:Preprepare ~vtime ~node
        in
        let b = batch_info t ~view ~seq in
        if b.bt_preprepare = None then b.bt_preprepare <- Some s
      | Trace.Prepared ->
        let s = touch t ~req:(-1L) ~view ~seq ~phase:Prepare ~vtime ~node in
        let b = batch_info t ~view ~seq in
        if b.bt_prepare = None then b.bt_prepare <- Some s;
        Option.iter (fun p -> add_parent t s p) b.bt_preprepare
      | Trace.Committed ->
        let s = touch t ~req:(-1L) ~view ~seq ~phase:Commit ~vtime ~node in
        let b = batch_info t ~view ~seq in
        if b.bt_commit = None then b.bt_commit <- Some s;
        (match b.bt_prepare with
        | Some p -> add_parent t s p
        | None -> Option.iter (fun p -> add_parent t s p) b.bt_preprepare)
      | Trace.Exec_request ->
        let s = touch t ~req ~view ~seq:(-1) ~phase:Exec ~vtime ~node in
        let r = req_info t req in
        if not (List.memq s r.rq_execs) then r.rq_execs <- r.rq_execs @ [ s ];
        List.iter (fun recv -> add_parent t s recv) r.rq_recvs;
        if e.Trace.detail <> "read-only" then begin
          let l = pending_for node in
          if not (List.memq s !l) then l := !l @ [ s ]
        end
      | Trace.Exec_tentative | Trace.Exec_final ->
        (* Bind the run of per-request exec spans on this node to the
           batch: the batch's ordering tail precedes each exec, and each
           bound request's send precedes the pre-prepare that batched it. *)
        let l = pending_for node in
        let b = batch_info t ~view ~seq in
        List.iter
          (fun s ->
            if s.sp_seq = -1 then s.sp_seq <- seq;
            Option.iter (fun tail -> add_parent t s tail) (batch_tail b);
            match (b.bt_preprepare, (req_info t s.sp_req).rq_request) with
            | Some pp, Some rq ->
              if rq.sp_seq = -1 then rq.sp_seq <- seq;
              add_parent t pp rq
            | None, Some rq -> if rq.sp_seq = -1 then rq.sp_seq <- seq
            | _ -> ())
          !l;
        l := []
      | Trace.Reply_sent ->
        let s = touch t ~req ~view ~seq:(-1) ~phase:Reply ~vtime ~node in
        let r = req_info t req in
        if not (List.memq s r.rq_replies) then
          r.rq_replies <- r.rq_replies @ [ s ];
        List.iter (fun ex -> add_parent t s ex) r.rq_execs
      | Trace.Client_deliver ->
        let s = touch t ~req ~view:(-1) ~seq:(-1) ~phase:Deliver ~vtime ~node in
        let r = req_info t req in
        if r.rq_deliver = None then r.rq_deliver <- Some s;
        List.iter (fun rp -> add_parent t s rp) r.rq_replies
      | Trace.Sim_fire | Trace.Net_enqueue | Trace.Net_serialize
      | Trace.Net_deliver | Trace.Net_drop | Trace.Viewchange_start
      | Trace.Viewchange_end | Trace.Checkpoint_stable ->
        ())
    events;
  t

let spans t = List.rev t.order

let span_count t = Hashtbl.length t.spans

let edge_count t = t.edges

let find t sid = Hashtbl.find_opt t.spans sid

let requests t = List.rev t.req_order

let delivered t =
  List.filter
    (fun req -> (Hashtbl.find t.reqs req).rq_deliver <> None)
    (requests t)

(* Walk parents from [from]; true iff [target] is reachable. *)
let reaches t ~from ~target =
  let seen = Hashtbl.create 32 in
  let rec go sid =
    Int64.equal sid target
    || (not (Hashtbl.mem seen sid))
       &&
       (Hashtbl.add seen sid ();
        match find t sid with
        | None -> false
        | Some s -> List.exists go s.sp_parents)
  in
  go from

let check t =
  List.filter_map
    (fun req ->
      let r = Hashtbl.find t.reqs req in
      match (r.rq_deliver, r.rq_request) with
      | None, _ -> None (* never delivered: nothing to certify *)
      | Some _, None -> Some (req, "delivered but no client send recorded")
      | Some d, Some rq ->
        if reaches t ~from:d.sp_id ~target:rq.sp_id then None
        else Some (req, "deliver not reachable from send"))
    (requests t)

let complete t = check t = []

let summary t =
  let reqs = requests t in
  let delv = delivered t in
  let incomplete = check t in
  Printf.sprintf
    "spans=%d edges=%d requests=%d delivered=%d incomplete=%d" (span_count t)
    (edge_count t) (List.length reqs) (List.length delv)
    (List.length incomplete)
