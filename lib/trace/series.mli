(** Bounded time-series ring of metric snapshots on a virtual-time cadence.

    Columns are fixed at creation; each sample is one (virtual time, value
    row). The sampling timer lives with the caller — this module stores and
    renders only, with fixed float formatting so equal series export
    byte-identically. *)

type t

val create : ?capacity:int -> names:string array -> unit -> t
(** Keep the newest [capacity] samples (default 4096). *)

val names : t -> string array

val record : t -> vtime:float -> float array -> unit
(** Append one sample; [values] must match the column count. The array is
    copied. *)

val total : t -> int
(** Samples ever recorded (including those evicted by the ring). *)

val length : t -> int

val dropped : t -> int

val iter : t -> (float -> float array -> unit) -> unit
(** Oldest first. The value array must not be mutated. *)

val samples : t -> (float * float array) list

val jsonl : t -> string
(** One JSON object per sample: [{"t":..., "<name>":value, ...}]. *)
