module Engine = Bft_sim.Engine
module Rng = Bft_util.Rng
module Fingerprint = Bft_crypto.Fingerprint
module Rig = Bft_shard.Rig
module Router = Bft_shard.Router
module Txn = Bft_shard.Txn
module Reshard = Bft_shard.Reshard
module Kv = Bft_services.Kv_store
open Bft_core

(* Chaos for the cross-shard layer: drive single-key writers and 2PC
   coordinators over a sharded rig, optionally reshard it live and crash
   things at the worst moments, then audit two shard-level invariants on
   top of the per-group safety audit:

   - [txn.atomic]: every cross-shard transaction is all-or-nothing. Each
     transaction writes its own unique tag to its (unique) keys, so the
     authoritative readback must find the tag under all of the keys or
     none; recorded decisions must agree across groups; and once traffic
     has settled no caught-up replica may still hold locks or in-doubt
     prepares — the residue of a wedged coordinator.
   - [reshard.no_lost_keys]: every key committed by the writers reads back
     with its last committed value after the migration, and donors retire
     their copies of moved slots.

   The scenarios are deterministic in (scenario, seed): the coordinator
   crash is armed on a fixed transaction index, not a timer. *)

type scenario = Healthy | Coordinator_crash | Replica_mid_migration

type violation = Campaign.violation = { invariant : string; detail : string }

type outcome = {
  seed : int;
  scenario : scenario;
  recovery : bool;
  writes_committed : int;
  txns_started : int;
  txns_committed : int;
  txns_aborted : int;
  txns_in_doubt : int;
  recoveries : int;
  moved_slots : int;
  moved_keys : int;
  sim_time : float;
  violations : violation list;
}

let failed o = o.violations <> []

let scenario_name = function
  | Healthy -> "healthy"
  | Coordinator_crash -> "coordinator-crash"
  | Replica_mid_migration -> "mid-migration"

let scenario_of_name = function
  | "healthy" -> Some Healthy
  | "coordinator-crash" -> Some Coordinator_crash
  | "mid-migration" -> Some Replica_mid_migration
  | _ -> None

(* Campaign shape: fixed, so (scenario, seed) pins down the run. *)
let f = 1
let capacity = 3 (* built groups; the third starts empty *)
let initial_groups = 2
let writers = 2
let writer_keys = 4
let coordinators = 2
let horizon = 2.5
let reshard_at = 0.8
let crash_at = 0.85
let crash_txn_index = 2 (* 0-based: the coordinator dies on its third txn *)
let writer_think = 0.02
let coord_think = 0.05
let settle_budget = 60.0

type coord_txn = {
  ct_tag : string;
  ct_keys : string list;
  mutable ct_outcome : Txn.outcome option;  (* None: in doubt (crash) *)
}

let run ?(scenario = Healthy) ?(recovery = true) ~seed () =
  let config =
    Config.make ~f ~checkpoint_interval:8 ~log_window:16
      ~admission_queue_limit:16 ~shed_retry_budget:4 ()
  in
  let stores =
    Array.init capacity (fun _ ->
        Array.init config.Config.n (fun _ -> Kv.create_store ()))
  in
  let rig =
    Rig.create ~seed ~initial_groups ~groups:capacity ~config
      ~service:(fun ~group r -> Kv.service_of_store stores.(group).(r))
      ()
  in
  let engine = Rig.engine rig in
  let camp_rng = Rig.rng rig "shard-campaign" in
  let recovery_timeout = if recovery then Some 0.3 else None in
  let violations = ref [] in
  let violate invariant detail =
    if List.length !violations < 8 then
      violations := !violations @ [ { invariant; detail } ]
  in
  (* --- single-key writers: the no_lost_keys ledger -------------------- *)
  let ledger : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let writes_committed = ref 0 in
  let writer_handles =
    List.init writers (fun w ->
        let h =
          Txn.create ~name:(Printf.sprintf "w%d" w) ?recovery_timeout rig
        in
        let rng = Rng.split camp_rng (Printf.sprintf "writer%d" w) in
        let seq = ref 0 in
        let rec step () =
          if Engine.now engine < horizon then begin
            let key = Printf.sprintf "w%d.k%d" w (Rng.int rng writer_keys) in
            let value = Printf.sprintf "w%d.v%d" w !seq in
            incr seq;
            Txn.invoke h (Kv.Put (key, value)) (fun result ->
                (match result with
                | Kv.Stored ->
                  incr writes_committed;
                  Hashtbl.replace ledger key value
                | other ->
                  violate "reshard.no_lost_keys"
                    (Printf.sprintf "writer put %s failed: %s" key
                       (match other with
                       | Kv.Error e -> e
                       | _ -> "unexpected result")));
                Engine.schedule engine ~delay:(Rng.float rng writer_think) step)
          end
        in
        Engine.schedule engine ~delay:(Rng.float rng writer_think) step;
        h)
  in
  (* --- cross-shard coordinators --------------------------------------- *)
  let coord_txns = ref [] in
  let coord_handles =
    List.init coordinators (fun c ->
        let h =
          Txn.create ~name:(Printf.sprintf "c%d" c) ~prepare_timeout:1.0
            ?recovery_timeout rig
        in
        let rng = Rng.split camp_rng (Printf.sprintf "coord%d" c) in
        let seq = ref 0 in
        let rec step () =
          if Engine.now engine < horizon && not (Txn.dead h) then begin
            let i = !seq in
            incr seq;
            let k1 = Printf.sprintf "c%d.a%d" c i in
            (* Prefer a partner key in another group so the transaction
               actually spans shards; settle for same-group if the hash
               refuses to cooperate. *)
            let router = Rig.router rig in
            let g1 = Router.group_of_key router k1 in
            let k2 =
              let rec pick tries =
                let cand =
                  if tries = 0 then Printf.sprintf "c%d.b%d" c i
                  else Printf.sprintf "c%d.b%d.%d" c i tries
                in
                if Router.group_of_key router cand <> g1 || tries >= 16 then
                  cand
                else pick (tries + 1)
              in
              pick 0
            in
            let tag = Printf.sprintf "c%d.t%d" c i in
            let record =
              { ct_tag = tag; ct_keys = [ k1; k2 ]; ct_outcome = None }
            in
            coord_txns := record :: !coord_txns;
            if scenario = Coordinator_crash && c = 0 && i = crash_txn_index
            then Txn.set_fail_mode h Crash_between_prepare_and_commit;
            Txn.exec h
              [ Kv.Put (k1, tag); Kv.Put (k2, tag) ]
              (fun outcome ->
                record.ct_outcome <- Some outcome;
                Engine.schedule engine ~delay:(Rng.float rng coord_think) step)
          end
        in
        Engine.schedule engine ~delay:(Rng.float rng coord_think) step;
        h)
  in
  (* --- scenario events ------------------------------------------------ *)
  let with_reshard = scenario <> Coordinator_crash in
  let migration = ref None in
  if with_reshard then
    Engine.schedule_at engine reshard_at (fun () ->
        Reshard.extend rig ~groups:capacity (fun p -> migration := Some p));
  let crashed = ref None in
  if scenario = Replica_mid_migration then
    Engine.schedule_at engine crash_at (fun () ->
        (* Replica 1 of group 0 — a donor group under the 2→3 extend. *)
        Cluster.crash_replica (Rig.cluster rig 0) 1;
        crashed := Some (0, 1));
  (* --- faulted window, heal, settle ----------------------------------- *)
  Rig.run ~until:horizon rig;
  Option.iter
    (fun (g, r) -> Cluster.restart_replica (Rig.cluster rig g) r)
    !crashed;
  let quiesced () =
    List.for_all (fun h -> Txn.dead h || not (Txn.busy h)) writer_handles
    && List.for_all (fun h -> Txn.dead h || not (Txn.busy h)) coord_handles
    && ((not with_reshard) || !migration <> None)
  in
  let deadline = horizon +. settle_budget in
  let rec settle t slack =
    if quiesced () && slack >= 2 then ()
    else if t >= deadline then ()
    else begin
      let t' = Stdlib.min (t +. 1.0) deadline in
      Rig.run ~until:t' rig;
      settle t' (if quiesced () then slack + 1 else 0)
    end
  in
  settle horizon 0;
  if not (quiesced ()) then begin
    if with_reshard && !migration = None then
      violate "reshard.no_lost_keys"
        (Printf.sprintf "migration still incomplete %.0f s after the window"
           settle_budget)
    else
      violate "txn.atomic"
        (Printf.sprintf "client operations still unresolved %.0f s after the \
                         window"
           settle_budget)
  end;
  (* --- janitor: a blocked client recovers the crashed coordinator ------ *)
  let in_doubt =
    List.filter (fun r -> r.ct_outcome = None) (List.rev !coord_txns)
  in
  let janitor_recoveries = ref 0 in
  if scenario = Coordinator_crash && recovery && in_doubt <> [] then begin
    let janitor = Txn.create ~name:"janitor" ~recovery_timeout:0.05 rig in
    let jobs =
      List.concat_map
        (fun r -> List.map (fun k -> Kv.Put (k, "janitor")) r.ct_keys)
        in_doubt
    in
    let pending = ref (List.length jobs) in
    let rec drain = function
      | [] -> ()
      | op :: rest ->
        Txn.invoke janitor op (fun _ ->
            decr pending;
            drain rest)
    in
    drain jobs;
    let rec wait t =
      if !pending > 0 && t < deadline then begin
        let t' = Stdlib.min (t +. 1.0) deadline in
        Rig.run ~until:t' rig;
        wait t'
      end
    in
    wait (Engine.now engine);
    janitor_recoveries := Txn.recoveries janitor;
    if !pending > 0 then
      violate "txn.atomic" "janitor writes blocked: lock recovery is wedged"
  end;
  (* --- authoritative readback ------------------------------------------ *)
  let reader = Txn.create ~name:"reader" rig in
  let read_all keys k =
    let results : (string, string option) Hashtbl.t = Hashtbl.create 64 in
    let rec next = function
      | [] -> k results
      | key :: rest ->
        Txn.invoke reader (Kv.Get key) (fun result ->
            (match result with
            | Kv.Value v -> Hashtbl.replace results key v
            | _ -> Hashtbl.replace results key None);
            next rest)
    in
    next keys
  in
  let ledger_keys = Hashtbl.fold (fun k _ acc -> k :: acc) ledger [] in
  let txn_keys = List.concat_map (fun r -> r.ct_keys) (List.rev !coord_txns) in
  let readback = ref None in
  read_all
    (List.sort_uniq compare (ledger_keys @ txn_keys))
    (fun results -> readback := Some results);
  let rec pump t =
    if !readback = None && t < deadline +. 30.0 then begin
      let t' = t +. 1.0 in
      Rig.run ~until:t' rig;
      pump t'
    end
  in
  pump (Engine.now engine);
  (match !readback with
  | None -> violate "txn.atomic" "authoritative readback never completed"
  | Some results ->
    let value key = Option.join (Hashtbl.find_opt results key) in
    (* reshard.no_lost_keys: every committed write survives, at its final
       owner, with its last committed value. Janitor overwrites are
       confined to coordinator keys, which the ledger never contains. *)
    Hashtbl.iter
      (fun key expect ->
        match value key with
        | Some v when String.equal v expect -> ()
        | got ->
          violate "reshard.no_lost_keys"
            (Printf.sprintf "key %s: committed %S but reads back %s" key
               expect
               (match got with Some v -> Printf.sprintf "%S" v | None -> "nothing")))
      ledger;
    (* txn.atomic, effect side: each transaction's tag is under all of its
       keys or none. The in-doubt (crashed, then janitor-overwritten or
       abandoned) transactions must land on "none". *)
    List.iter
      (fun r ->
        let tags =
          List.length
            (List.filter
               (fun k ->
                 match value k with
                 | Some v -> String.equal v r.ct_tag
                 | None -> false)
               r.ct_keys)
        in
        let total = List.length r.ct_keys in
        let atomic = tags = 0 || tags = total in
        let consistent =
          match r.ct_outcome with
          | Some Txn.Committed -> tags = total
          | Some (Txn.Aborted _) -> tags = 0
          | None -> atomic
        in
        if not (atomic && consistent) then
          violate "txn.atomic"
            (Printf.sprintf
               "txn %s: %d of %d keys carry its writes (coordinator saw %s)"
               r.ct_tag tags total
               (match r.ct_outcome with
               | Some Txn.Committed -> "commit"
               | Some (Txn.Aborted reason) -> "abort: " ^ reason
               | None -> "nothing: in doubt")))
      (List.rev !coord_txns));
  (* --- store-level audits (caught-up replicas only) -------------------- *)
  let caught_up g =
    let rs = Cluster.replicas (Rig.cluster rig g) in
    let len r = List.length (Replica.executed_digests r) in
    let longest = Array.fold_left (fun acc r -> Stdlib.max acc (len r)) 0 rs in
    List.filter (fun i -> len rs.(i) = longest)
      (List.init (Array.length rs) Fun.id)
  in
  (* Per-group agreement: same digest at every finally-executed seq. *)
  for g = 0 to capacity - 1 do
    let rs = Cluster.replicas (Rig.cluster rig g) in
    let table : (int, int * Fingerprint.t) Hashtbl.t = Hashtbl.create 256 in
    Array.iteri
      (fun rid r ->
        List.iter
          (fun (seqno, digest) ->
            match Hashtbl.find_opt table seqno with
            | None -> Hashtbl.replace table seqno (rid, digest)
            | Some (_, d0) ->
              if not (Fingerprint.equal d0 digest) then
                violate "safety.agreement"
                  (Printf.sprintf "group %d seq %d: divergent execution" g
                     seqno))
          (Replica.executed_digests r))
      rs
  done;
  (* Lock hygiene: once everything settled, in-doubt state means a wedged
     transaction. Without recovery this is the expected catch: the dead
     coordinator's locks linger forever. *)
  let decisions : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  for g = 0 to capacity - 1 do
    List.iter
      (fun rid ->
        let store = stores.(g).(rid) in
        (match Kv.store_locks store with
        | [] -> ()
        | (key, txn) :: _ ->
          violate "txn.atomic"
            (Printf.sprintf
               "group %d replica %d: key %s still locked by %s after settle" g
               rid key txn));
        (match Kv.store_prepared_txns store with
        | [] -> ()
        | txn :: _ ->
          violate "txn.atomic"
            (Printf.sprintf
               "group %d replica %d: txn %s still in doubt after settle" g rid
               txn));
        List.iter
          (fun r ->
            match Kv.store_decision store r.ct_tag with
            | None -> ()
            | Some committed -> (
              let id = r.ct_tag in
              match Hashtbl.find_opt decisions id with
              | None -> Hashtbl.replace decisions id committed
              | Some prior ->
                if prior <> committed then
                  violate "txn.atomic"
                    (Printf.sprintf "txn %s decided both ways across groups" id)))
          !coord_txns)
      (caught_up g)
  done;
  (* Donor retirement: moved ledger keys must be gone from their donors. *)
  (if with_reshard && !migration <> None then
     let final_router = Rig.router rig in
     let initial_router = Router.create ~groups:initial_groups () in
     Hashtbl.iter
       (fun key _ ->
         let donor = Router.group_of_key initial_router key in
         let owner = Router.group_of_key final_router key in
         if donor <> owner then
           List.iter
             (fun rid ->
               match Kv.store_find stores.(donor).(rid) key with
               | None -> ()
               | Some _ ->
                 violate "reshard.no_lost_keys"
                   (Printf.sprintf
                      "group %d replica %d still holds moved key %s" donor rid
                      key))
             (caught_up donor))
       ledger);
  let txns_in_doubt =
    List.length (List.filter (fun r -> r.ct_outcome = None) !coord_txns)
  in
  {
    seed;
    scenario;
    recovery;
    writes_committed = !writes_committed;
    txns_started =
      List.fold_left (fun acc h -> acc + Txn.started h) 0 coord_handles;
    txns_committed =
      List.fold_left (fun acc h -> acc + Txn.committed h) 0 coord_handles;
    txns_aborted =
      List.fold_left (fun acc h -> acc + Txn.aborted h) 0 coord_handles;
    txns_in_doubt;
    recoveries =
      !janitor_recoveries
      + List.fold_left
          (fun acc h -> acc + Txn.recoveries h)
          0 (writer_handles @ coord_handles);
    moved_slots = (match !migration with Some p -> p.Reshard.moved_slots | None -> 0);
    moved_keys = (match !migration with Some p -> p.Reshard.moved_keys | None -> 0);
    sim_time = Rig.now rig;
    violations = !violations;
  }

(* --- reporting --------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jsonl o =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"scenario\":\"%s\",\"seed\":%d,\"recovery\":%b,\"writes_committed\":%d,\"txns_started\":%d,\"txns_committed\":%d,\"txns_aborted\":%d,\"txns_in_doubt\":%d,\"recoveries\":%d,\"moved_slots\":%d,\"moved_keys\":%d,\"sim_time\":%.6f,\"violations\":["
    (scenario_name o.scenario) o.seed o.recovery o.writes_committed
    o.txns_started o.txns_committed o.txns_aborted o.txns_in_doubt o.recoveries
    o.moved_slots o.moved_keys o.sim_time;
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"invariant\":\"%s\",\"detail\":\"%s\"}"
        (escape v.invariant) (escape v.detail))
    o.violations;
  Buffer.add_string b "]}";
  Buffer.contents b
