(** Timed fault plans: the input language of the chaos campaigns.

    A plan is a timeline of fault-injection events against a running
    cluster. Plans are pure data with a stable text codec, so a failing
    plan can be written to disk, shrunk to a minimal counterexample and
    replayed byte-for-byte with [bft_lab chaos --plan FILE].

    The generator keeps every campaign inside the paper's fault
    assumption: Byzantine behaviour switches and crash/restart cycles are
    drawn from a single fault set of at most [f] replicas (a replica that
    loses its volatile log in a crash counts against the same budget the
    proactive-recovery window does), so the safety invariants checked by
    {!Campaign} are guaranteed to hold on a correct protocol. Partitions,
    datagram loss and duplication are unrestricted: they may suspend
    liveness while active but can never excuse a safety violation. *)

type action =
  | Crash of Bft_core.Types.replica_id  (** fail-stop the machine (datagrams dropped) *)
  | Crash_owner
      (** fail-stop whichever replica owns the next sequence number when
          the event fires (the current epoch owner under rotating
          ordering; the primary under single-primary ordering) — resolved
          against live replica state at execution time *)
  | Restart of Bft_core.Types.replica_id
      (** bring the machine up and reboot the replica from its last stable
          checkpoint; also meaningful without a prior [Crash] (a reboot) *)
  | Partition of Bft_core.Types.replica_id list list
      (** symmetric partition between the given replica groups; replicas
          (and client machines) not named keep full connectivity *)
  | Heal  (** remove the partition *)
  | Set_loss of float  (** uniform datagram loss probability *)
  | Set_dup of float  (** uniform datagram duplication probability *)
  | Behavior_switch of Bft_core.Types.replica_id * Bft_core.Behavior.t
      (** switch the replica's injected behaviour mid-run *)
  | Client_burst of int  (** inject this many extra client operations *)
  | Load_spike of { rate : float; duration : float }
      (** open-loop Poisson arrivals at [rate] per second for [duration]
          seconds, multiplexed over the campaign's stub pool — offered
          load independent of completions, to exercise admission control *)
  | Load_ramp of { rate_to : float; duration : float }
      (** open-loop arrivals ramping linearly from zero to [rate_to] per
          second across [duration] seconds, then stopping *)

type event = { at : float; action : action }

type t = event list
(** Sorted by time; ties fire in list order. *)

val duration : t -> float
(** Time at which the plan's last effect ends, 0 for the empty plan. A
    load spike or ramp keeps generating arrivals for its whole window, so
    it contributes [at +. duration], not just [at]. *)

val pp_action : Format.formatter -> action -> unit

val to_string : t -> string
(** One event per line: ["0.500000 crash 2"], ["1.250000 partition 0|1,2,3"],
    ["2.000000 behavior 1 replay"], ... Round-trips with {!of_string}. *)

val of_string : string -> (t, string) result
(** Parses the {!to_string} format. Blank lines and [#] comments are
    ignored; events are re-sorted by time. *)

val validate : n:int -> t -> (unit, string) result
(** Replica ids in range, probabilities in [0,1], bursts positive, spike
    and ramp rates/durations positive, partition groups disjoint, times
    non-negative. *)

val generate :
  ?rotating:bool -> rng:Bft_util.Rng.t -> n:int -> f:int -> horizon:float -> unit -> t
(** A random plan whose events all fire before [horizon]. Deterministic in
    [rng]. Crash and Byzantine targets are confined to a fault set of [f]
    replicas drawn once per plan (see the module comment). With [rotating]
    (default false), half the plans become owner-mode: their entire fault
    budget is one {!Crash_owner} — aimed at whichever replica owns the
    epoch in progress when it fires — and fault-set crashes and Byzantine
    switches are suppressed, since the owner hit at runtime may lie
    outside the fault set and a second budgeted fault could exceed [f]
    simultaneously-faulty replicas. The default keeps existing seeds
    producing byte-identical plans. *)
