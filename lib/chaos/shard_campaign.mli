(** Chaos campaigns for the cross-shard layer: single-key writers and 2PC
    coordinators over a sharded rig, with a live reshard and targeted
    crashes, audited against two shard-level invariants.

    - [txn.atomic]: a cross-shard transaction's effects are all-or-nothing
      across groups — the authoritative readback finds a transaction's
      writes under all of its keys or none, recorded decisions agree
      across groups, and no locks or in-doubt prepares survive the settle.
    - [reshard.no_lost_keys]: every key committed before/during migration
      reads back with its last committed value afterwards, and donor
      groups retire their copies of moved slots.

    A run is deterministic in (scenario, seed, recovery). *)

type scenario =
  | Healthy  (** no faults; live reshard 2 → 3 groups under traffic *)
  | Coordinator_crash
      (** a coordinator dies between PREPARE and COMMIT (no reshard);
          with [recovery] a blocked client resolves the leftover locks,
          without it the audit catches the wedged transaction *)
  | Replica_mid_migration
      (** live reshard with a donor-group replica crashing mid-migration,
          restarted at the heal *)

type violation = Campaign.violation = { invariant : string; detail : string }

type outcome = {
  seed : int;
  scenario : scenario;
  recovery : bool;
  writes_committed : int;
  txns_started : int;
  txns_committed : int;
  txns_aborted : int;
  txns_in_doubt : int;  (** coordinator died before learning the outcome *)
  recoveries : int;
  moved_slots : int;
  moved_keys : int;
  sim_time : float;
  violations : violation list;
}

val failed : outcome -> bool

val scenario_name : scenario -> string

val scenario_of_name : string -> scenario option

val run : ?scenario:scenario -> ?recovery:bool -> seed:int -> unit -> outcome
(** [recovery] (default true) enables client-driven lock recovery; setting
    it false demonstrates the [txn.atomic] audit catching a dead
    coordinator's wedged transaction. *)

val jsonl : outcome -> string
(** One JSON object (no trailing newline) describing the run. *)
