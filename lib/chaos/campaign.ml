module Engine = Bft_sim.Engine
module Network = Bft_net.Network
module Rng = Bft_util.Rng
module Fingerprint = Bft_crypto.Fingerprint
module Monitor = Bft_trace.Monitor
open Bft_core

type violation = { invariant : string; detail : string }

type outcome = {
  seed : int;
  plan : Plan.t;
  ops_total : int;
  ops_completed : int;
  ops_rejected : int;
  sheds : int;
  final_view : int;
  views_after_heal : int;
  sim_time : float;
  violations : violation list;
  alerts : Monitor.alert list;
  monitor : Monitor.t;
}

let failed o = o.violations <> []

(* Campaign shape: fixed so that a (seed, plan) pair pins down the whole
   run. Three steady clients keep a closed-loop shared-counter workload
   running across the whole faulted window — faults that land on an idle
   protocol exercise nothing — plus two clients that fire the
   Client_burst events and (when the plan carries Load_spike/Load_ramp
   events) a pool of stubs that multiplexes an open-loop arrival stream.
   The counter makes execution order client-observable: every Add reply
   is the pre-add value. Admission control runs with a small queue limit
   so spikes actually shed; the campaign then checks overload-specific
   invariants: no silent loss (every operation ends committed or
   explicitly rejected) and queues stay bounded. *)
let f = 1
let steady_clients = 3
let burst_clients = 2
let openloop_stubs = 16 (* stub pool multiplexing Load_spike/Load_ramp arrivals *)
let admission_queue_limit = 16
let shed_retry_budget = 4 (* keep rejection latency well inside the settle budget *)
let steady_think = 0.02 (* mean gap between a reply and the next request *)
let settle_budget = 60.0
let max_views_after_heal = 8

let digest_short d =
  let s = Format.asprintf "%a" Fingerprint.pp d in
  if String.length s > 12 then String.sub s 0 12 else s

(* Agreement: every audited replica must have committed the same batch at
   every sequence number it finally executed. *)
let audit_agreement replicas audited =
  let table : (int, int * Fingerprint.t) Hashtbl.t = Hashtbl.create 256 in
  let violations = ref [] in
  List.iter
    (fun rid ->
      List.iter
        (fun (seq, digest) ->
          match Hashtbl.find_opt table seq with
          | None -> Hashtbl.replace table seq (rid, digest)
          | Some (rid0, d0) ->
            if not (Fingerprint.equal d0 digest) && List.length !violations < 3
            then
              violations :=
                {
                  invariant = "safety.agreement";
                  detail =
                    Printf.sprintf
                      "seq %d: replica %d executed %s, replica %d executed %s"
                      seq rid0 (digest_short d0) rid (digest_short digest);
                }
                :: !violations)
        (Replica.executed_digests replicas.(rid)))
    audited;
  List.rev !violations

(* Reply consistency: two audited replicas whose committed client tables
   agree on a client's latest timestamp must agree on the result digest
   they would answer with. *)
let audit_replies replicas audited =
  let table : (int * int64, int * Fingerprint.t) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  List.iter
    (fun rid ->
      List.iter
        (fun (client, ts, digest) ->
          match Hashtbl.find_opt table (client, ts) with
          | None -> Hashtbl.replace table (client, ts) (rid, digest)
          | Some (rid0, d0) ->
            if not (Fingerprint.equal d0 digest) && List.length !violations < 3
            then
              violations :=
                {
                  invariant = "safety.replies";
                  detail =
                    Printf.sprintf
                      "client %d ts %Ld: replica %d replies %s, replica %d \
                       replies %s"
                      client ts rid0 (digest_short d0) rid (digest_short digest);
                }
                :: !violations)
        (Replica.client_replies replicas.(rid)))
    audited;
  List.rev !violations

(* Exactly-once execution per slot: [Replica.executed_digests] appends only
   at finalization, so a sequence number appearing twice in one replica's
   audit means a batch was ordered (and executed) twice — the failure mode
   of a broken epoch handoff re-proposing a predecessor's slot. *)
let audit_unique_execution replicas audited =
  List.filter_map
    (fun rid ->
      let seqs = List.map fst (Replica.executed_digests replicas.(rid)) in
      let dup =
        let seen = Hashtbl.create 256 in
        List.find_opt
          (fun s ->
            if Hashtbl.mem seen s then true
            else (
              Hashtbl.replace seen s ();
              false))
          seqs
      in
      Option.map
        (fun s ->
          {
            invariant = "safety.unique_execution";
            detail = Printf.sprintf "replica %d executed seq %d twice" rid s;
          })
        dup)
    audited

let plan_text plan =
  String.concat "; "
    (List.map
       (fun e -> Format.asprintf "%.6f %a" e.Plan.at Plan.pp_action e.Plan.action)
       plan)

let ordering_text = function
  | Config.Single_primary -> "single-primary"
  | Config.Rotating { epoch_length } -> Printf.sprintf "rotating-%d" epoch_length

let run ?(ordering = Config.Single_primary) ?(unsafe_no_commit_quorum = false)
    ?(trace = Bft_trace.Trace.nil) ?limits ?on_bundle ~seed ~plan () =
  let config =
    Config.make ~f ~checkpoint_interval:8 ~log_window:16 ~ordering
      ~admission_queue_limit ~shed_retry_budget ~unsafe_no_commit_quorum ()
  in
  let n = config.Config.n in
  let cluster =
    Cluster.create ~config ~seed ~client_machines:2 ~trace
      ~service:(fun _ -> Bft_services.Counter.service ())
      ()
  in
  let engine = Cluster.engine cluster in
  let network = Cluster.network cluster in
  let horizon = Stdlib.max 3.0 (Plan.duration plan +. 1.0) in
  (* Always-on health monitor: its gauge scrapes are pure reads, so the
     campaign's outcome is byte-identical with or without it. The bundle
     header carries (seed, plan), which is all it takes to replay. *)
  let monitor = Monitor.create ?limits () in
  Monitor.set_meta monitor
    [
      ("campaign.seed", string_of_int seed);
      ("campaign.f", string_of_int f);
      ("campaign.ordering", ordering_text ordering);
      ("campaign.plan", plan_text plan);
      ( "cost_profile",
        Bft_sim.Calibration.name (Cluster.calibration cluster) );
    ];
  Monitor.set_flight_recorder ~trace
    ~profile:(fun () -> Cluster.profile cluster)
    ?on_bundle monitor ();
  Cluster.attach_monitor cluster monitor;
  let camp_rng = Cluster.rng cluster "campaign" in
  let payload = Bft_services.Counter.op_payload (Bft_services.Counter.Add ("shared", 1)) in
  (* workload *)
  let steady = List.init steady_clients (fun _ -> Cluster.add_client cluster) in
  let burst = Array.init burst_clients (fun _ -> Cluster.add_client cluster) in
  let burst_total =
    List.fold_left
      (fun acc e ->
        match e.Plan.action with Plan.Client_burst k -> acc + k | _ -> acc)
      0 plan
  in
  let issued = ref 0 in
  let completed = ref 0 in
  let rejected = ref 0 in
  (* every invocation resolves exactly once: committed, or explicitly
     rejected by admission control past the retry budget *)
  let resolve (o : Client.outcome) =
    if o.Client.rejected then incr rejected else incr completed
  in
  List.iteri
    (fun i client ->
      let rng = Rng.split camp_rng (Printf.sprintf "steady%d" i) in
      let rec step () =
        if Engine.now engine < horizon then begin
          incr issued;
          Client.invoke client payload (fun o ->
              resolve o;
              Engine.schedule engine
                ~delay:(Rng.float rng (2.0 *. steady_think))
                step)
        end
      in
      Engine.schedule engine ~delay:(Rng.float rng steady_think) step)
    steady;
  let burst_pending = Array.make burst_clients 0 in
  let rec pump_burst j =
    if burst_pending.(j) > 0 && not (Client.busy burst.(j)) then begin
      burst_pending.(j) <- burst_pending.(j) - 1;
      Client.invoke burst.(j) payload (fun o ->
          resolve o;
          pump_burst j)
    end
  in
  (* Open-loop load (Load_spike / Load_ramp): arrivals are generated by a
     seeded process independent of completions and multiplexed over a stub
     pool, so a spike can offer far more load than the closed-loop clients
     ever would — that pressure is what admission control sheds. The pool
     only exists when the plan carries open-loop events, keeping all other
     campaigns byte-identical to earlier runs of the same (seed, plan). *)
  let plan_has_openloop =
    List.exists
      (fun e ->
        match e.Plan.action with
        | Plan.Load_spike _ | Plan.Load_ramp _ -> true
        | _ -> false)
      plan
  in
  let ol_offered = ref 0 in
  let ol_waiting = ref 0 in
  let ol_free = Queue.create () in
  if plan_has_openloop then
    for _ = 1 to openloop_stubs do
      Queue.add (Cluster.add_client cluster) ol_free
    done;
  let rec ol_pump () =
    if (not (Queue.is_empty ol_free)) && !ol_waiting > 0 then begin
      decr ol_waiting;
      let stub = Queue.pop ol_free in
      Client.invoke stub payload (fun o ->
          resolve o;
          Queue.add stub ol_free;
          ol_pump ());
      ol_pump ()
    end
  in
  let ol_arrive () =
    incr ol_offered;
    incr ol_waiting;
    ol_pump ()
  in
  (* Arrival samplers, seeded per event in plan order. A spike is a
     homogeneous Poisson stream; a ramp is sampled by thinning a
     [rate_to] candidate stream with acceptance growing linearly from 0
     to 1 across the window (exact for a linear-rate Poisson process). *)
  let ol_event_idx = ref 0 in
  let schedule_arrivals ~rate ~duration ~ramp =
    let rng = Rng.split camp_rng (Printf.sprintf "openloop%d" !ol_event_idx) in
    incr ol_event_idx;
    let start = Engine.now engine in
    let until = start +. duration in
    let rec next t =
      let t' = t +. Rng.exponential rng ~mean:(1.0 /. rate) in
      if t' < until then begin
        if (not ramp) || Rng.float rng 1.0 < (t' -. start) /. duration then
          Engine.schedule_at engine t' ol_arrive;
        next t'
      end
    in
    next start
  in
  (* plan execution *)
  let ever_byz = Array.make n false in
  let cur_behavior = Array.make n Behavior.Correct in
  let crashed = Array.make n false in
  let apply = function
    | Plan.Crash r ->
      crashed.(r) <- true;
      Cluster.crash_replica cluster r
    | Plan.Crash_owner ->
      (* Resolved at fire time: whichever replica the most advanced
         reachable replica says owns the next sequence number (the epoch
         owner under rotating ordering, the primary otherwise). A fully
         crashed cluster has no reporter; then there is nothing to crash. *)
      let reporter = ref None in
      Array.iteri
        (fun i r ->
          if Network.is_up network (Cluster.replica_node cluster i) then
            match !reporter with
            | Some best when Replica.view best >= Replica.view r -> ()
            | _ -> reporter := Some r)
        (Cluster.replicas cluster);
      (match !reporter with
      | None -> ()
      | Some r ->
        let owner = Replica.ordering_owner r in
        crashed.(owner) <- true;
        Cluster.crash_replica cluster owner)
    | Plan.Restart r ->
      crashed.(r) <- false;
      Cluster.restart_replica cluster r
    | Plan.Partition groups ->
      Network.install_partition network
        ~groups:(List.map (List.map (Cluster.replica_node cluster)) groups)
    | Plan.Heal -> Network.heal_partition network
    | Plan.Set_loss p -> Network.set_loss network p
    | Plan.Set_dup p -> Network.set_duplication network p
    | Plan.Behavior_switch (r, b) ->
      if not (Behavior.is_correct b) then ever_byz.(r) <- true;
      cur_behavior.(r) <- b;
      Cluster.set_behavior cluster r b
    | Plan.Client_burst k ->
      for j = 0 to k - 1 do
        let c = j mod burst_clients in
        burst_pending.(c) <- burst_pending.(c) + 1
      done;
      for c = 0 to burst_clients - 1 do
        pump_burst c
      done
    | Plan.Load_spike { rate; duration } ->
      schedule_arrivals ~rate ~duration ~ramp:false
    | Plan.Load_ramp { rate_to; duration } ->
      schedule_arrivals ~rate:rate_to ~duration ~ramp:true
  in
  List.iter
    (fun e -> Engine.schedule_at engine e.Plan.at (fun () -> apply e.Plan.action))
    plan;
  (* run the faulted window, then force-heal everything *)
  Cluster.run ~until:horizon cluster;
  Network.heal_partition network;
  Network.set_loss network 0.0;
  Network.set_duplication network 0.0;
  for r = 0 to n - 1 do
    if crashed.(r) then begin
      crashed.(r) <- false;
      Cluster.restart_replica cluster r
    end;
    if cur_behavior.(r) <> Behavior.Correct then begin
      cur_behavior.(r) <- Behavior.Correct;
      Cluster.set_behavior cluster r Behavior.Correct
    end
  done;
  let replicas = Cluster.replicas cluster in
  let audited =
    List.init n (fun r -> r) |> List.filter (fun r -> not ever_byz.(r))
  in
  let max_view () =
    List.fold_left (fun acc r -> Stdlib.max acc (Replica.view replicas.(r))) 0 audited
  in
  let view_at_heal = max_view () in
  (* settle: advance in 1 s chunks until the workload drains (plus two
     chunks of slack for trailing commits), a safety audit trips, or the
     budget runs out *)
  let violations = ref [] in
  let deadline = horizon +. settle_budget in
  let ops_total () = !issued + burst_total + !ol_offered in
  let resolved () = !completed + !rejected in
  let rec settle t slack =
    let safety =
      audit_agreement replicas audited
      @ audit_replies replicas audited
      @ audit_unique_execution replicas audited
    in
    if safety <> [] then violations := safety
    else if resolved () >= ops_total () && slack >= 2 then ()
    else if t >= deadline then begin
      if resolved () < ops_total () then
        violations :=
          [
            {
              invariant = "overload.no_silent_loss";
              detail =
                Printf.sprintf
                  "%d of %d client operations resolved (%d committed, %d \
                   rejected) %.0f s after heal"
                  (resolved ()) (ops_total ()) !completed !rejected
                  settle_budget;
            };
          ]
    end
    else begin
      let t' = Stdlib.min (t +. 1.0) deadline in
      Cluster.run ~until:t' cluster;
      settle t' (if resolved () >= ops_total () then slack + 1 else 0)
    end
  in
  settle horizon 0;
  (* Resolution accounting must be exact, not just "at least": a callback
     firing twice (or an op both committing and being reported rejected)
     is silent corruption of the ledger, so it fails the same invariant. *)
  if !violations = [] && resolved () <> ops_total () then
    violations :=
      [
        {
          invariant = "overload.no_silent_loss";
          detail =
            Printf.sprintf
              "%d operations issued but %d resolutions observed (%d \
               committed, %d rejected)"
              (ops_total ()) (resolved ()) !completed !rejected;
        };
      ];
  if
    !violations = []
    && config.Config.admission_queue_limit > 0
    && Monitor.peak_queue monitor > config.Config.admission_queue_limit
  then
    violations :=
      [
        {
          invariant = "overload.queue_bounded";
          detail =
            Printf.sprintf
              "peak admission queue depth %d exceeds configured limit %d"
              (Monitor.peak_queue monitor)
              config.Config.admission_queue_limit;
        };
      ];
  let final_view = max_view () in
  let views_after_heal = Stdlib.max 0 (final_view - view_at_heal) in
  if !violations = [] && views_after_heal > max_views_after_heal then
    violations :=
      [
        {
          invariant = "liveness.views";
          detail =
            Printf.sprintf "%d view changes after heal (bound %d)"
              views_after_heal max_views_after_heal;
        };
      ];
  (* An invariant violation is an external post-mortem trigger: dump a
     bundle even if no detector fired (safety bugs can be silent). *)
  (match !violations with
  | [] -> ()
  | v :: _ ->
    Monitor.trigger monitor ~at:(Cluster.now cluster)
      ~reason:(v.invariant ^ ": " ^ v.detail));
  {
    seed;
    plan;
    ops_total = ops_total ();
    ops_completed = !completed;
    ops_rejected = !rejected;
    sheds = Array.fold_left (fun acc r -> acc + Replica.sheds r) 0 replicas;
    final_view;
    views_after_heal;
    sim_time = Cluster.now cluster;
    violations = !violations;
    alerts = Monitor.alerts monitor;
    monitor;
  }

(* --- reporting --- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jsonl ?(campaign = 0) ?trace_path o =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"campaign\":%d,\"seed\":%d,\"events\":%d,\"ops_total\":%d,\"ops_completed\":%d,\"ops_rejected\":%d,\"sheds\":%d,\"final_view\":%d,\"views_after_heal\":%d,\"sim_time\":%.6f,"
    campaign o.seed (List.length o.plan) o.ops_total o.ops_completed
    o.ops_rejected o.sheds o.final_view o.views_after_heal o.sim_time;
  (match trace_path with
  | Some p -> Printf.bprintf b "\"trace\":\"%s\"," (escape p)
  | None -> ());
  Buffer.add_string b "\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"invariant\":\"%s\",\"detail\":\"%s\"}" (escape v.invariant)
        (escape v.detail))
    o.violations;
  Buffer.add_string b "],\"alerts\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Monitor.alert_json a))
    o.alerts;
  Buffer.add_string b "],\"plan\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\"" (escape (Format.asprintf "%.6f %a" e.Plan.at Plan.pp_action e.Plan.action)))
    o.plan;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- shrinking --- *)

let shrink ~run plan =
  let last_outcome = ref (run plan) in
  if not (failed !last_outcome) then (plan, !last_outcome)
  else
    let rec pass events =
      (* try deleting each event in turn; restart the scan after any hit so
         we converge to a 1-minimal plan *)
      let rec try_each prefix = function
        | [] -> None
        | e :: rest ->
          let candidate = List.rev_append prefix rest in
          let o = run candidate in
          if failed o then begin
            last_outcome := o;
            Some candidate
          end
          else try_each (e :: prefix) rest
      in
      match try_each [] events with
      | Some smaller -> pass smaller
      | None -> events
    in
    let minimal = pass plan in
    (minimal, !last_outcome)
