(** One chaos campaign: drive a deterministic [f = 1] cluster with a
    steady client workload, execute a {!Plan.t} against it via engine
    timers, force-heal every fault at the horizon, and check the two
    protocol invariants when the dust settles:

    - {b safety}: all correct replicas agree on the batch committed at
      every sequence number, and on the committed reply (result digest)
      for every (client, timestamp) pair. Replicas that were ever switched
      to a Byzantine behaviour are outside the fault assumption's
      "correct" set and excluded from the audit; crash/restart replicas
      are included (their amnesia is covered by the [f] budget).
    - {b liveness / no silent loss}: once every fault is healed and at
      most [f] replicas were ever faulty, every outstanding client
      operation resolves within the settle budget — commits, or is
      explicitly rejected by admission control — without unbounded view
      thrashing. Resolution accounting is exact: an op that resolves
      twice (or never) fails the same invariant.
    - {b bounded queues}: campaigns run with admission control enabled,
      and the primary's request-admission queue must never be observed
      deeper than its configured limit, even under the open-loop
      [Load_spike]/[Load_ramp] plan events.

    Campaigns are deterministic: the same seed and plan produce the same
    {!outcome} byte for byte (including the JSONL rendering). *)

type violation = { invariant : string; detail : string }
(** [invariant] is a stable dotted name ("safety.agreement",
    "safety.replies", "safety.unique_execution",
    "overload.no_silent_loss", "overload.queue_bounded",
    "liveness.views"). *)

type outcome = {
  seed : int;
  plan : Plan.t;
  ops_total : int;
      (** steady + burst + open-loop arrivals actually offered *)
  ops_completed : int;
  ops_rejected : int;
      (** explicitly rejected by admission control past the retry budget *)
  sheds : int;  (** BUSY replies sent by replicas, cumulative *)
  final_view : int;  (** max view over audited replicas at the end *)
  views_after_heal : int;  (** view-change rounds consumed after forced heal *)
  sim_time : float;  (** virtual seconds until the campaign settled *)
  violations : violation list;
  alerts : Bft_trace.Monitor.alert list;
      (** typed health alerts raised by the always-on monitor, oldest
          first *)
  monitor : Bft_trace.Monitor.t;
      (** the campaign's monitor, for SLO sketches, {!Bft_trace.Monitor.summary}
          and {!Bft_trace.Monitor.last_bundle} *)
}

val failed : outcome -> bool

val run :
  ?ordering:Bft_core.Config.ordering ->
  ?unsafe_no_commit_quorum:bool ->
  ?trace:Bft_trace.Trace.t ->
  ?limits:Bft_trace.Monitor.limits ->
  ?on_bundle:(Bft_trace.Monitor.alert option -> string -> unit) ->
  seed:int ->
  plan:Plan.t ->
  unit ->
  outcome
(** Runs entirely in virtual time; [ordering] (default
    {!Bft_core.Config.Single_primary}) selects the cluster's ordering
    mode, so crash-the-epoch-owner campaigns can run the protocol under
    {!Bft_core.Config.Rotating} leadership; [unsafe_no_commit_quorum] is
    the deliberately unsound protocol variant used to self-test the
    checker ({!Bft_core.Config.t}). Pass a live [trace] to record the
    campaign's protocol trace — used to make shrunk failures
    inspectable.

    Every campaign runs with an always-on health monitor attached
    ({!Bft_trace.Monitor}): detector thresholds come from [limits]
    (default {!Bft_trace.Monitor.default_limits}), its flight recorder is
    armed with the campaign's trace, profile and (seed, plan) metadata —
    making every bundle replayable on its own — and any invariant
    violation triggers a post-mortem dump even when no detector fired.
    [on_bundle] observes each bundle as it is dumped (e.g. to stream it to
    disk). Monitoring is pure observation: outcomes are byte-identical
    with default and custom limits as far as protocol fields go. *)

val jsonl : ?campaign:int -> ?trace_path:string -> outcome -> string
(** One JSON line (no trailing newline) with a stable field order, so
    same-seed runs diff byte-identically. [trace_path] adds a ["trace"]
    field pointing at the JSONL protocol trace of the (shrunk) failure. *)

val shrink : run:(Plan.t -> outcome) -> Plan.t -> Plan.t * outcome
(** Greedy event-deletion shrinking: repeatedly drop any single event
    whose removal keeps the plan failing, until no single deletion does.
    [run] must be the same closed campaign the plan originally failed
    under. Returns the minimal plan and its (failing) outcome; if the
    input plan does not fail under [run], returns it unchanged. *)
