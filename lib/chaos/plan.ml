module Behavior = Bft_core.Behavior
module Rng = Bft_util.Rng

type action =
  | Crash of Bft_core.Types.replica_id
  | Crash_owner
  | Restart of Bft_core.Types.replica_id
  | Partition of Bft_core.Types.replica_id list list
  | Heal
  | Set_loss of float
  | Set_dup of float
  | Behavior_switch of Bft_core.Types.replica_id * Behavior.t
  | Client_burst of int
  | Load_spike of { rate : float; duration : float }
  | Load_ramp of { rate_to : float; duration : float }

type event = { at : float; action : action }

type t = event list

(* A load spike or ramp keeps generating arrivals for its whole window, so
   a plan's duration extends to the end of the window, not just its start:
   the campaign's settle phase must begin after the last arrival. *)
let event_end e =
  match e.action with
  | Load_spike { duration; _ } | Load_ramp { duration; _ } -> e.at +. duration
  | _ -> e.at

let duration = function
  | [] -> 0.0
  | evs -> List.fold_left (fun acc e -> Stdlib.max acc (event_end e)) 0.0 evs

let sort evs =
  (* stable, so simultaneous events keep their plan order *)
  List.stable_sort (fun a b -> Float.compare a.at b.at) evs

let groups_to_string groups =
  String.concat "|"
    (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups)

let pp_action ppf = function
  | Crash r -> Format.fprintf ppf "crash %d" r
  | Crash_owner -> Format.fprintf ppf "crash-owner"
  | Restart r -> Format.fprintf ppf "restart %d" r
  | Partition groups -> Format.fprintf ppf "partition %s" (groups_to_string groups)
  | Heal -> Format.fprintf ppf "heal"
  | Set_loss p -> Format.fprintf ppf "loss %.6f" p
  | Set_dup p -> Format.fprintf ppf "dup %.6f" p
  | Behavior_switch (r, b) ->
    Format.fprintf ppf "behavior %d %s" r (Behavior.to_string b)
  | Client_burst k -> Format.fprintf ppf "burst %d" k
  | Load_spike { rate; duration } ->
    Format.fprintf ppf "spike %.6f %.6f" rate duration
  | Load_ramp { rate_to; duration } ->
    Format.fprintf ppf "ramp %.6f %.6f" rate_to duration

let event_to_string e = Format.asprintf "%.6f %a" e.at pp_action e.action

let to_string t =
  String.concat "" (List.map (fun e -> event_to_string e ^ "\n") t)

let parse_groups s =
  String.split_on_char '|' s
  |> List.map (fun g ->
         String.split_on_char ',' g
         |> List.filter (fun x -> x <> "")
         |> List.map int_of_string)
  |> List.filter (fun g -> g <> [])

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ at; "crash"; r ] -> { at = float_of_string at; action = Crash (int_of_string r) }
  | [ at; "crash-owner" ] -> { at = float_of_string at; action = Crash_owner }
  | [ at; "restart"; r ] ->
    { at = float_of_string at; action = Restart (int_of_string r) }
  | [ at; "partition"; groups ] ->
    { at = float_of_string at; action = Partition (parse_groups groups) }
  | [ at; "heal" ] -> { at = float_of_string at; action = Heal }
  | [ at; "loss"; p ] -> { at = float_of_string at; action = Set_loss (float_of_string p) }
  | [ at; "dup"; p ] -> { at = float_of_string at; action = Set_dup (float_of_string p) }
  | [ at; "behavior"; r; b ] ->
    {
      at = float_of_string at;
      action = Behavior_switch (int_of_string r, Option.get (Behavior.of_string b));
    }
  | [ at; "burst"; k ] ->
    { at = float_of_string at; action = Client_burst (int_of_string k) }
  | [ at; "spike"; rate; dur ] ->
    {
      at = float_of_string at;
      action =
        Load_spike { rate = float_of_string rate; duration = float_of_string dur };
    }
  | [ at; "ramp"; rate; dur ] ->
    {
      at = float_of_string at;
      action =
        Load_ramp
          { rate_to = float_of_string rate; duration = float_of_string dur };
    }
  | _ -> failwith "unrecognized event"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (sort (List.rev acc))
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else (
        match parse_line trimmed with
        | ev -> go (ev :: acc) (lineno + 1) rest
        | exception _ ->
          Error (Printf.sprintf "plan line %d: cannot parse %S" lineno trimmed))
  in
  go [] 1 lines

let validate ~n t =
  let check_id r what =
    if r < 0 || r >= n then
      Error (Printf.sprintf "%s: replica %d out of range (n = %d)" what r n)
    else Ok ()
  in
  let check_prob p what =
    if p < 0.0 || p > 1.0 then
      Error (Printf.sprintf "%s: probability %g outside [0, 1]" what p)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let check_event e =
    let* () =
      if e.at < 0.0 then
        Error (Printf.sprintf "event at %g: negative time" e.at)
      else Ok ()
    in
    match e.action with
    | Crash r -> check_id r "crash"
    | Crash_owner -> Ok ()
    | Restart r -> check_id r "restart"
    | Heal -> Ok ()
    | Set_loss p -> check_prob p "loss"
    | Set_dup p -> check_prob p "dup"
    | Client_burst k ->
      if k <= 0 then Error "burst: size must be positive" else Ok ()
    | Load_spike { rate; duration } ->
      if rate <= 0.0 then Error "spike: rate must be positive"
      else if duration <= 0.0 then Error "spike: duration must be positive"
      else Ok ()
    | Load_ramp { rate_to; duration } ->
      if rate_to <= 0.0 then Error "ramp: target rate must be positive"
      else if duration <= 0.0 then Error "ramp: duration must be positive"
      else Ok ()
    | Behavior_switch (r, b) ->
      let* () = check_id r "behavior" in
      (match b with
      | Behavior.Crash_at _ ->
        Error "behavior: crash-at is not switchable (use crash/restart events)"
      | _ -> Ok ())
    | Partition groups ->
      let ids = List.concat groups in
      let* () =
        List.fold_left
          (fun acc r -> Result.bind acc (fun () -> check_id r "partition"))
          (Ok ()) ids
      in
      if List.length ids <> List.length (List.sort_uniq compare ids) then
        Error "partition: groups must be disjoint"
      else if List.length groups < 2 then
        Error "partition: need at least two groups"
      else Ok ()
  in
  List.fold_left (fun acc e -> Result.bind acc (fun () -> check_event e)) (Ok ()) t

(* --- generator --- *)

let pick_fault_set rng ~n ~f =
  (* f distinct replicas; every crash or Byzantine switch in the plan
     targets this set, keeping the run inside the 3f+1 fault assumption. *)
  let rec go acc k =
    if k = 0 then acc
    else
      let r = Rng.int rng n in
      if List.mem r acc then go acc k else go (r :: acc) (k - 1)
  in
  go [] f

let random_partition rng ~n =
  (* split the replicas in two non-empty groups *)
  let cut = 1 + Rng.int rng (n - 1) in
  let all = List.init n (fun i -> i) in
  let rec split acc rest k =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when k = 0 -> (List.rev acc, rest)
    | x :: rest -> split (x :: acc) rest (k - 1)
  in
  let a, b = split [] all cut in
  [ a; b ]

let byzantine_menu =
  [|
    Behavior.Mute;
    Behavior.Two_faced;
    Behavior.Corrupt_replies;
    Behavior.Forge_auth;
    Behavior.Stale_view;
    Behavior.Replay;
    Behavior.Inflate_view 1_000_000;
  |]

let generate ?(rotating = false) ~rng ~n ~f ~horizon () =
  let faulty = pick_fault_set rng ~n ~f in
  let faulty_one () = List.nth faulty (Rng.int rng (List.length faulty)) in
  (* A crash-owner resolves to an arbitrary replica at fire time, so it
     cannot share a plan with fault-set crashes or Byzantine switches: the
     owner it hits may lie outside the fault set, and two budgeted faults
     on distinct replicas would exceed the f-replica assumption the
     campaign checker's liveness bounds rely on. Owner-mode plans spend
     their whole fault budget on a single crash-owner; the coin is only
     tossed under [rotating], keeping the default RNG stream untouched. *)
  let owner_mode = rotating && Rng.bernoulli rng 0.5 in
  let owner_crashed = ref false in
  let t_in lo hi = lo +. Rng.float rng (hi -. lo) in
  let count = 2 + Rng.int rng 5 in
  let events = ref [] in
  let emit at action = events := { at; action } :: !events in
  (* A fault that lands while the protocol is idle exercises nothing, so
     crashes and partitions are usually preceded by a client burst a few
     milliseconds earlier: the cut then hits requests mid-quorum, which is
     exactly the window where a broken protocol loses agreement. *)
  let lead_burst at =
    if Rng.bernoulli rng 0.6 then
      emit (Stdlib.max 0.0 (at -. 0.002 -. Rng.float rng 0.02)) (Client_burst (4 + Rng.int rng 5))
  in
  for _ = 1 to count do
    let at = t_in (0.05 *. horizon) (0.75 *. horizon) in
    match Rng.int rng 8 with
    | 0 ->
      (* crash, and usually restart before the horizon so the plan itself
         exercises restart-from-checkpoint (the forced heal covers the rest).
         Owner-mode plans instead aim one crash at whichever replica owns
         the next sequence number when the event fires — the epoch handoff
         is exactly the window a broken rotation loses batches in. The
         owner is unpredictable at generation time, so a crash-owner is
         left down until the campaign's forced heal (crashes are benign:
         they cost liveness during the window, never safety). *)
      if owner_mode then begin
        if not !owner_crashed then begin
          owner_crashed := true;
          lead_burst at;
          emit at Crash_owner
        end
        else emit at (Client_burst (1 + Rng.int rng 6))
      end
      else begin
        let r = faulty_one () in
        lead_burst at;
        emit at (Crash r);
        if Rng.bernoulli rng 0.7 then
          emit (t_in at (0.95 *. horizon)) (Restart r)
      end
    | 1 ->
      lead_burst at;
      emit at (Partition (random_partition rng ~n));
      if Rng.bernoulli rng 0.8 then emit (t_in at (0.95 *. horizon)) Heal
    | 2 -> emit at (Set_loss (Rng.float rng 0.35))
    | 3 -> emit at (Set_dup (Rng.float rng 0.15))
    | 4 when owner_mode ->
      (* Byzantine switches also spend fault budget; an owner-mode plan
         has already committed its budget to the crash-owner. *)
      emit at (Client_burst (1 + Rng.int rng 6))
    | 4 ->
      let r = faulty_one () in
      let b =
        if Rng.bernoulli rng 0.2 then Behavior.Slow (0.0005 +. Rng.float rng 0.003)
        else byzantine_menu.(Rng.int rng (Array.length byzantine_menu))
      in
      emit at (Behavior_switch (r, b));
      if Rng.bernoulli rng 0.5 then
        emit (t_in at (0.95 *. horizon)) (Behavior_switch (r, Behavior.Correct))
    | 5 ->
      (* open-loop burst: offered load far past what a handful of
         closed-loop clients can generate — exercises admission control *)
      emit at
        (Load_spike
           {
             rate = 150.0 +. Rng.float rng 500.0;
             duration = 0.05 +. Rng.float rng (0.2 *. horizon);
           })
    | 6 ->
      emit at
        (Load_ramp
           {
             rate_to = 150.0 +. Rng.float rng 500.0;
             duration = 0.05 +. Rng.float rng (0.2 *. horizon);
           })
    | _ -> emit at (Client_burst (1 + Rng.int rng 6))
  done;
  sort (List.rev !events)
